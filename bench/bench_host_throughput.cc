// Host (wall-clock) scan throughput. Two experiments, one JSON:
//
// 1. Three scan modes on the diverse-VM scenario, best-of-N wall time per
//    (engine, mode) so scheduler jitter cannot invert the ratios:
//      byte-ordered — the ablation (FusionConfig::byte_ordered_trees);
//      fingerprint  — fingerprint-ordered trees (the committed baseline);
//      delta        — fingerprint trees plus the epoch-based pass cache
//                     (FusionConfig::delta_scan): steady-state passes replay
//                     recorded conclusions for unchanged pages instead of
//                     resolving, hashing, and descending the trees.
//    The delta mode's simulated outcome must be bit-identical to the
//    fingerprint mode's (the replay-ledger contract; delta_scan_test proves
//    stats/trace/timestamps equality, the bench re-checks the stats here and
//    aborts loudly on any divergence).
//
// 2. A --threads sweep (default 1,2,4,8) of the parallel scan pipeline
//    (FusionConfig::scan_threads) on a churn variant of the same scenario where
//    guests keep dirtying their unique pages, so per-wake content hashing — the
//    phase-1 work the pipeline shards across workers — dominates the scan path.
//    The sweep runs the streaming pipeline (FusionConfig::scan_streaming, the
//    default) and reports its overlap accounting: phase-1 CPU time (sum of
//    chunk times), phase-1 wall span, pure merge time, and the overlap
//    efficiency 1 - scan_wall / (phase1_wall + merge_wall) — 0 when hashing
//    and merging strictly serialize (the barrier), approaching the ideal as
//    the merge consumer hides behind in-flight hash chunks. A second pass at
//    the widest thread count re-runs each engine with scan_streaming=false and
//    reports the streaming/barrier scan-throughput ratio; the simulated
//    outcome must be bit-identical between the two shapes (the speculative
//    hash is validated by generation before the memo is trusted).
//
// Both experiments measure the simulator's own cost, not modeled latency:
// simulated statistics and charged latencies are bit-identical across modes,
// thread counts, and pipeline shapes (the bench re-checks this;
// engine_parity_test proves it). The sweep reports scan-section throughput
// from ScanTiming::scan_ns, both measured and projected: on hosts with fewer
// cores than threads the measured wall time cannot speed up, so the critical
// path is projected from the measured phase-1 CPU aggregate as
// scan_ns - phase1_cpu_ns + phase1_cpu_ns / threads (serial phase unchanged,
// sharded phase divided across workers). The JSON records which basis
// ("measured" when host_cpus >= threads, else "projected") produced the
// headline. Results go to stdout and BENCH_host_throughput.json.
//
// --quick shrinks the run for CI regression gating (1 repeat, shorter simulated
// windows, a 1,8 thread sweep). Rates and speedup ratios stay comparable to the
// full run; absolute page counts do not — tools/bench_diff.py compares only the
// ratio tables for exactly this reason.

#include <algorithm>
#include <array>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"

namespace vusion {
namespace {

constexpr std::size_t kVms = 4;            // 2-4 VMs per the harness spec
constexpr std::size_t kGuestPages = 4096;  // 16 MB guests

// Full-run defaults; --quick shrinks them for the CI regression gate.
SimTime g_run_time = 120 * kSecond;
int g_repeats = 3;  // best-of-N: min wall time per configuration
std::size_t g_churn_steps = 40;

// Diverse-VM content model: near-duplicate pages. Every page shares one long
// common prefix (think zeroed-then-initialized structures, common library/page
// cache contents) and differs only in a trailing 8-byte tag: one quarter are
// cross-VM duplicate groups (fusable), the rest unique per (vm, page). This is
// the realistic worst case for byte-ordered trees — every tree comparison scans
// ~4 KB before the first differing byte — and the best case fingerprints target:
// one cached-hash integer compare.
constexpr std::uint64_t kCommonSeed = 0xc0ffee;
constexpr std::size_t kTailOffset = kPageSize - 8;
constexpr std::size_t kDuplicateGroups = 512;

// Churn sweep: smaller guests, more steps. Each step rewrites the tag of every
// unique page (duplicates stay merged), so the next scan round re-hashes ~3/4 of
// all pages — the hash-bound regime the parallel pipeline targets.
constexpr std::size_t kChurnGuestPages = 2048;
constexpr SimTime kChurnStepTime = 500 * kMillisecond;

// Experiment-1 scan modes, in run order. Delta rides on fingerprint trees, so
// fingerprint is both the byte-ordered comparison's numerator and the delta
// comparison's denominator.
enum class ScanMode { kByteOrdered, kFingerprint, kDelta };
constexpr std::array<ScanMode, 3> kScanModes = {
    ScanMode::kByteOrdered, ScanMode::kFingerprint, ScanMode::kDelta};

const char* ModeName(ScanMode mode) {
  switch (mode) {
    case ScanMode::kByteOrdered:
      return "byte-ordered";
    case ScanMode::kFingerprint:
      return "fingerprint";
    case ScanMode::kDelta:
      return "delta";
  }
  return "?";
}

struct SimOutcome {
  std::uint64_t pages_scanned = 0;
  std::uint64_t merges = 0;
  std::uint64_t frames_saved = 0;

  bool operator==(const SimOutcome&) const = default;
};

struct RunResult {
  std::string engine;
  ScanMode mode_kind = ScanMode::kFingerprint;
  std::string mode;
  SimOutcome sim;
  double wall_seconds = 0.0;
  double pages_per_second = 0.0;
  double end_to_end_seconds = 0.0;  // whole scenario incl. boot
  // Delta runs only: engine + machine metrics (delta.* replay counters,
  // pattern_hash_cache.*) for the JSON artifact.
  MetricsSnapshot metrics;
};

struct SweepResult {
  std::string engine;
  std::size_t threads = 1;
  bool streaming = true;
  SimOutcome sim;
  double wall_seconds = 0.0;        // whole churn loop (writes + scans)
  double scan_seconds = 0.0;        // scan sections only (ScanTiming::scan_ns)
  double phase1_cpu_seconds = 0.0;  // aggregate phase-1 chunk CPU time
  double phase1_wall_seconds = 0.0; // phase-1 span (first resolve .. last chunk)
  double merge_wall_seconds = 0.0;  // pure merge time (excludes help/wait)
  // 1 - scan_wall / (phase1_wall + merge_wall): 0 = hashing and merging fully
  // serialized (the barrier shape), higher = merge hidden behind hashing.
  double overlap_efficiency = 0.0;
  std::uint64_t speculative_hashes = 0;
  std::uint64_t speculative_stale = 0;
  std::uint64_t streamed_batches = 0;
  double projected_seconds = 0.0;   // scan - phase1_cpu + phase1_cpu/threads
  std::uint64_t items = 0;
  double measured_pps = 0.0;
  double projected_pps = 0.0;
};

SimOutcome CaptureOutcome(Scenario& scenario) {
  SimOutcome out;
  out.pages_scanned = scenario.engine()->stats().pages_scanned;
  out.merges = scenario.engine()->stats().merges;
  out.frames_saved = scenario.engine()->frames_saved();
  return out;
}

ScenarioConfig ThroughputScenario(EngineKind kind) {
  ScenarioConfig config = EvalScenario(kind);
  config.machine.frame_count = 1u << 17;  // 512 MB host
  config.fusion.pages_per_wake = 400;     // scan-heavy: stress the hot path
  config.fusion.pool_frames = 8192;
  return config;
}

RunResult RunModeOnce(EngineKind kind, ScanMode mode) {
  const auto t0 = std::chrono::steady_clock::now();
  ScenarioConfig config = ThroughputScenario(kind);
  config.fusion.byte_ordered_trees = mode == ScanMode::kByteOrdered;
  config.fusion.delta_scan = mode == ScanMode::kDelta;
  Scenario scenario(config);
  for (std::size_t p = 0; p < kVms; ++p) {
    Process& vm = scenario.machine().CreateProcess();
    const VirtAddr base =
        vm.AllocateRegion(kGuestPages, PageType::kAnonymous, true, false);
    for (std::size_t i = 0; i < kGuestPages; ++i) {
      vm.SetupMapPattern(VaddrToVpn(base) + i, kCommonSeed);
      // The tail write materializes the page: common prefix + distinguishing tag.
      const bool duplicate = i % 4 == 0;
      const std::uint64_t tag = duplicate
                                    ? 0x1000000 + i % kDuplicateGroups
                                    : 0x2000000 + (p << 32) + i;
      vm.Write64(base + i * kPageSize + kTailOffset, tag);
    }
  }

  const auto t1 = std::chrono::steady_clock::now();
  scenario.RunFor(g_run_time);
  const auto t2 = std::chrono::steady_clock::now();

  RunResult result;
  result.engine = scenario.engine()->name();
  result.mode_kind = mode;
  result.mode = ModeName(mode);
  result.sim = CaptureOutcome(scenario);
  if (mode == ScanMode::kDelta) {
    result.metrics = scenario.CollectMetrics();
  }
  result.wall_seconds = std::chrono::duration<double>(t2 - t1).count();
  result.pages_per_second =
      result.wall_seconds > 0 ? static_cast<double>(result.sim.pages_scanned) / result.wall_seconds
                              : 0.0;
  result.end_to_end_seconds = std::chrono::duration<double>(t2 - t0).count();
  return result;
}

// Best-of-g_repeats wall time, with the three modes interleaved (byte, fp,
// delta, byte, fp, delta, ...) so a slow environmental window penalizes every
// mode equally instead of whichever happened to run inside it. Simulated
// outcomes must agree across repeats (the simulator is deterministic), and the
// delta mode's outcome must equal the fingerprint mode's (the replay-ledger
// contract); the bench aborts loudly on either violation.
std::array<RunResult, 3> RunModeSet(EngineKind kind) {
  std::array<RunResult, 3> best = {RunModeOnce(kind, kScanModes[0]),
                                   RunModeOnce(kind, kScanModes[1]),
                                   RunModeOnce(kind, kScanModes[2])};
  for (int r = 1; r < g_repeats; ++r) {
    for (RunResult& slot : best) {
      RunResult next = RunModeOnce(kind, slot.mode_kind);
      if (!(next.sim == slot.sim)) {
        std::fprintf(stderr, "FATAL: nondeterministic outcome for %s/%s\n",
                     next.engine.c_str(), next.mode.c_str());
        std::exit(1);
      }
      if (next.wall_seconds < slot.wall_seconds) {
        slot = std::move(next);
      }
    }
  }
  if (!(best[2].sim == best[1].sim)) {
    std::fprintf(stderr,
                 "FATAL: delta scanning changed the simulated outcome for %s "
                 "(replay-ledger contract violated)\n",
                 best[2].engine.c_str());
    std::exit(1);
  }
  return best;
}

SweepResult RunSweepOnce(EngineKind kind, std::size_t threads, bool streaming) {
  ScenarioConfig config = ThroughputScenario(kind);
  config.fusion.scan_threads = threads;
  config.fusion.scan_streaming = streaming;
  config.fusion.wpf_period = 2 * kSecond;  // several full passes within the churn window
  Scenario scenario(config);
  std::vector<std::pair<Process*, VirtAddr>> vms;
  for (std::size_t p = 0; p < kVms; ++p) {
    Process& vm = scenario.machine().CreateProcess();
    const VirtAddr base =
        vm.AllocateRegion(kChurnGuestPages, PageType::kAnonymous, true, false);
    for (std::size_t i = 0; i < kChurnGuestPages; ++i) {
      vm.SetupMapPattern(VaddrToVpn(base) + i, kCommonSeed);
      const bool duplicate = i % 4 == 0;
      const std::uint64_t tag = duplicate
                                    ? 0x1000000 + i % kDuplicateGroups
                                    : 0x2000000 + (p << 32) + i;
      vm.Write64(base + i * kPageSize + kTailOffset, tag);
    }
    vms.emplace_back(&vm, base);
  }

  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t step = 0; step < g_churn_steps; ++step) {
    // Rewrite every unique page's tag; merged duplicates are left alone so the
    // churn does not trigger COW unmerges, only re-hashing on the next scan.
    for (std::size_t p = 0; p < vms.size(); ++p) {
      for (std::size_t i = 0; i < kChurnGuestPages; ++i) {
        if (i % 4 == 0) continue;
        vms[p].first->Write64(vms[p].second + i * kPageSize + kTailOffset,
                              0x3000000 + (p << 40) + (i << 8) + step);
      }
    }
    scenario.RunFor(kChurnStepTime);
  }
  const auto t1 = std::chrono::steady_clock::now();

  SweepResult result;
  result.engine = scenario.engine()->name();
  result.threads = threads;
  result.streaming = streaming;
  result.sim = CaptureOutcome(scenario);
  result.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
  const host::ScanTiming* timing = scenario.engine()->scan_timing();
  if (timing != nullptr) {
    result.scan_seconds = timing->scan_ns * 1e-9;
    result.phase1_cpu_seconds = timing->phase1_cpu_ns * 1e-9;
    result.phase1_wall_seconds = timing->phase1_wall_ns * 1e-9;
    result.merge_wall_seconds = timing->merge_wall_ns * 1e-9;
    result.speculative_hashes = timing->speculative_hashes;
    result.speculative_stale = timing->speculative_stale;
    result.streamed_batches = timing->streamed_batches;
    result.items = timing->items;
  }
  const double serial_sum = result.phase1_wall_seconds + result.merge_wall_seconds;
  result.overlap_efficiency =
      serial_sum > 0 ? std::max(0.0, 1.0 - result.scan_seconds / serial_sum) : 0.0;
  // On an oversubscribed host the per-chunk wall times can overlap, so their sum
  // can exceed the scan wall; clamp the parallelizable share to keep the
  // projection sublinear in the thread count.
  const double parallelizable = std::min(result.phase1_cpu_seconds, result.scan_seconds);
  result.projected_seconds = (result.scan_seconds - parallelizable) +
                             parallelizable / static_cast<double>(threads);
  result.measured_pps =
      result.scan_seconds > 0 ? static_cast<double>(result.items) / result.scan_seconds : 0.0;
  result.projected_pps = result.projected_seconds > 0
                             ? static_cast<double>(result.items) / result.projected_seconds
                             : 0.0;
  return result;
}

SweepResult RunSweep(EngineKind kind, std::size_t threads, bool streaming = true) {
  SweepResult best = RunSweepOnce(kind, threads, streaming);
  for (int r = 1; r < g_repeats; ++r) {
    SweepResult next = RunSweepOnce(kind, threads, streaming);
    if (!(next.sim == best.sim) || next.items != best.items) {
      std::fprintf(stderr, "FATAL: nondeterministic outcome for %s threads=%zu\n",
                   next.engine.c_str(), threads);
      std::exit(1);
    }
    if (next.scan_seconds < best.scan_seconds) {
      best = next;
    }
  }
  return best;
}

void Run(const std::vector<std::size_t>& thread_counts) {
  const unsigned host_cpus = std::max(1u, std::thread::hardware_concurrency());
  bench::Reporter reporter("host_throughput");

  // --- Experiment 1: byte-ordered vs fingerprint vs delta (best-of-N). ---
  reporter.Header(
      "Host scan throughput: byte-ordered vs fingerprint trees vs delta pass cache");
  {
    Json scenario = Json::Object();
    scenario.Set("vms", kVms);
    scenario.Set("guest_pages", kGuestPages);
    scenario.Set("sim_seconds", g_run_time / kSecond);
    scenario.Set("repeats", g_repeats);
    reporter.SetConfig("scenario", std::move(scenario));
  }
  const std::array<EngineKind, 4> engines = {EngineKind::kKsm, EngineKind::kWpf,
                                             EngineKind::kVUsion, EngineKind::kVUsionThp};
  std::vector<RunResult> results;
  std::printf("%-12s %-14s %12s %10s %14s %10s\n", "engine", "mode", "scanned", "wall(s)",
              "pages/s", "e2e(s)");
  for (const EngineKind kind : engines) {
    std::array<RunResult, 3> set = RunModeSet(kind);
    for (RunResult& r : set) {
      std::printf("%-12s %-14s %12llu %10.3f %14.0f %10.3f\n", r.engine.c_str(),
                  r.mode.c_str(), static_cast<unsigned long long>(r.sim.pages_scanned),
                  r.wall_seconds, r.pages_per_second, r.end_to_end_seconds);
      results.push_back(std::move(r));
    }
  }

  // --- Experiment 2: scan_threads sweep on the churn scenario (streaming). ---
  reporter.Header("Parallel scan pipeline: scan_threads sweep (churn scenario, streaming)");
  std::printf("%-12s %8s %12s %9s %9s %9s %9s %6s %12s %12s\n", "engine", "threads",
              "items", "scan(s)", "p1cpu(s)", "p1wall(s)", "merge(s)", "ovl%",
              "meas pg/s", "proj pg/s");
  std::vector<std::vector<SweepResult>> sweeps;
  for (const EngineKind kind : engines) {
    std::vector<SweepResult> series;
    for (const std::size_t threads : thread_counts) {
      SweepResult r = RunSweep(kind, threads);
      if (!series.empty() && !(r.sim == series.front().sim)) {
        std::fprintf(stderr,
                     "FATAL: %s simulated outcome differs between threads=%zu and threads=%zu\n",
                     r.engine.c_str(), series.front().threads, r.threads);
        std::exit(1);
      }
      std::printf("%-12s %8zu %12llu %9.3f %9.3f %9.3f %9.3f %5.1f%% %12.0f %12.0f\n",
                  r.engine.c_str(), r.threads, static_cast<unsigned long long>(r.items),
                  r.scan_seconds, r.phase1_cpu_seconds, r.phase1_wall_seconds,
                  r.merge_wall_seconds, r.overlap_efficiency * 100.0, r.measured_pps,
                  r.projected_pps);
      series.push_back(std::move(r));
    }
    std::printf("  %s: simulated outcome identical across all thread counts\n",
                series.front().engine.c_str());
    sweeps.push_back(std::move(series));
  }

  // --- Experiment 2b: streaming vs barrier at the widest thread count. ---
  const std::size_t wide_threads =
      *std::max_element(thread_counts.begin(), thread_counts.end());
  reporter.Header("Streaming vs barrier pipeline (churn scenario)");
  std::printf("%-12s %8s %12s %12s %10s %12s %12s\n", "engine", "threads", "barrier(s)",
              "stream(s)", "speedup", "spec hashes", "stale");
  double ksm_streaming_speedup = 0.0;
  for (std::size_t e = 0; e < engines.size(); ++e) {
    const SweepResult& stream = sweeps[e].back();  // widest streaming cell
    SweepResult barrier = RunSweep(engines[e], wide_threads, /*streaming=*/false);
    if (!(barrier.sim == stream.sim) || barrier.items != stream.items) {
      std::fprintf(stderr,
                   "FATAL: %s simulated outcome differs between barrier and streaming "
                   "(speculative-hash validation broken)\n",
                   barrier.engine.c_str());
      std::exit(1);
    }
    const double speedup =
        stream.scan_seconds > 0 ? barrier.scan_seconds / stream.scan_seconds : 0.0;
    if (barrier.engine == "KSM") {
      ksm_streaming_speedup = speedup;
    }
    std::printf("%-12s %8zu %12.3f %12.3f %9.2fx %12llu %12llu\n", barrier.engine.c_str(),
                wide_threads, barrier.scan_seconds, stream.scan_seconds, speedup,
                static_cast<unsigned long long>(stream.speculative_hashes),
                static_cast<unsigned long long>(stream.speculative_stale));
    reporter.AddRow("streaming_speedup",
                    {{"engine", barrier.engine},
                     {"threads", wide_threads},
                     {"barrier_scan_seconds", barrier.scan_seconds},
                     {"streaming_scan_seconds", stream.scan_seconds},
                     {"speedup", speedup},
                     {"speculative_hashes", stream.speculative_hashes},
                     {"speculative_stale", stream.speculative_stale}});
  }
  std::printf("  simulated outcome identical between barrier and streaming pipelines\n");

  const bool measured_basis =
      host_cpus >= *std::max_element(thread_counts.begin(), thread_counts.end());
  const char* basis = measured_basis ? "measured" : "projected";

  // --- Reporter rows + stdout summary. ---
  {
    Json sweep_config = Json::Object();
    sweep_config.Set("vms", kVms);
    sweep_config.Set("guest_pages", kChurnGuestPages);
    sweep_config.Set("churn_steps", g_churn_steps);
    sweep_config.Set("step_ms", kChurnStepTime / kMillisecond);
    sweep_config.Set("repeats", g_repeats);
    sweep_config.Set("host_cpus", host_cpus);
    sweep_config.Set("basis", basis);
    reporter.SetConfig("threads_sweep", std::move(sweep_config));
  }
  for (const RunResult& r : results) {
    reporter.AddRow("runs", {{"engine", r.engine},
                             {"mode", r.mode},
                             {"pages_scanned", r.sim.pages_scanned},
                             {"merges", r.sim.merges},
                             {"frames_saved", r.sim.frames_saved},
                             {"wall_seconds", r.wall_seconds},
                             {"pages_per_second", r.pages_per_second},
                             {"end_to_end_seconds", r.end_to_end_seconds}});
    reporter.AddTiming(r.engine + "/" + r.mode + "_wall", r.wall_seconds * 1e3);
  }
  std::printf(
      "\nscan-throughput speedups (fingerprint/byte-ordered and delta/fingerprint, "
      "best of %d):\n",
      g_repeats);
  double ksm_speedup = 0.0;
  double ksm_delta_speedup = 0.0;
  for (std::size_t i = 0; i + 2 < results.size(); i += 3) {
    const RunResult& bytes = results[i];
    const RunResult& hashed = results[i + 1];
    const RunResult& delta = results[i + 2];
    const double speedup =
        bytes.pages_per_second > 0 ? hashed.pages_per_second / bytes.pages_per_second : 0.0;
    const double delta_speedup =
        hashed.pages_per_second > 0 ? delta.pages_per_second / hashed.pages_per_second : 0.0;
    if (bytes.engine == "KSM") {
      ksm_speedup = speedup;
      ksm_delta_speedup = delta_speedup;
    }
    const std::uint64_t probes = delta.metrics.CounterValue("delta.probes");
    const std::uint64_t replays = delta.metrics.CounterValue("delta.replays");
    std::printf("  %-12s fingerprint %.2fx  delta %.2fx  (replays %llu / probes %llu)\n",
                bytes.engine.c_str(), speedup, delta_speedup,
                static_cast<unsigned long long>(replays),
                static_cast<unsigned long long>(probes));
    reporter.AddRow("speedup", {{"engine", bytes.engine},
                                {"speedup", speedup},
                                {"delta_speedup", delta_speedup}});
    reporter.AddMetrics(bytes.engine + "/delta", delta.metrics);
  }
  // KSM is the headline: its scan path is pure tree matching. VUsion's scan cost
  // is dominated by per-round re-randomization (a security feature, identical in
  // both modes), so its tree ratio stays near 1 by design, and its delta replay
  // still pays the relocation — only the tree descend and hashing are skipped.
  std::printf("\nheadline: KSM diverse-VM scan-throughput speedup %.2fx (target >= 5x)\n",
              ksm_speedup);
  reporter.AddRow("headlines", {{"name", "ksm_fingerprint_speedup"},
                                {"value", ksm_speedup},
                                {"target", 5.0}});
  std::printf("headline: KSM steady-state delta-scan speedup %.2fx (target >= 3x)\n",
              ksm_delta_speedup);
  reporter.AddRow("headlines", {{"name", "ksm_delta_speedup"},
                                {"value", ksm_delta_speedup},
                                {"target", 3.0}});

  double ksm_parallel = 0.0;
  for (const std::vector<SweepResult>& series : sweeps) {
    for (const SweepResult& r : series) {
      reporter.AddRow("threads_sweep", {{"engine", r.engine},
                                        {"threads", r.threads},
                                        {"items", r.items},
                                        {"scan_seconds", r.scan_seconds},
                                        {"phase1_cpu_seconds", r.phase1_cpu_seconds},
                                        {"phase1_wall_seconds", r.phase1_wall_seconds},
                                        {"merge_wall_seconds", r.merge_wall_seconds},
                                        {"overlap_efficiency", r.overlap_efficiency},
                                        {"speculative_hashes", r.speculative_hashes},
                                        {"speculative_stale", r.speculative_stale},
                                        {"streamed_batches", r.streamed_batches},
                                        {"projected_scan_seconds", r.projected_seconds},
                                        {"pages_per_second", r.measured_pps},
                                        {"projected_pages_per_second", r.projected_pps}});
    }
  }
  std::printf("\nparallel scan speedup vs 1 thread (%s basis, host has %u cpu%s):\n", basis,
              host_cpus, host_cpus == 1 ? "" : "s");
  for (const std::vector<SweepResult>& series : sweeps) {
    const double base_pps = series.front().measured_pps;
    std::printf("  %-12s", series.front().engine.c_str());
    for (const SweepResult& r : series) {
      const double pps = measured_basis ? r.measured_pps : r.projected_pps;
      const double speedup = base_pps > 0 ? pps / base_pps : 0.0;
      if (series.front().engine == "KSM" && r.threads == 8) {
        ksm_parallel = speedup;
      }
      std::printf("  %zut=%.2fx", r.threads, speedup);
      reporter.AddRow("parallel_speedup", {{"engine", r.engine},
                                           {"threads", r.threads},
                                           {"speedup", speedup}});
    }
    std::printf("\n");
  }
  std::printf("\nheadline: KSM 8-thread parallel scan speedup %.2fx (%s, target >= 3x)\n",
              ksm_parallel, basis);
  reporter.AddRow("headlines", {{"name", "ksm_parallel_speedup_8t"},
                                {"value", ksm_parallel},
                                {"target", 3.0},
                                {"basis", basis}});
  std::printf("headline: KSM streaming-vs-barrier scan speedup %.2fx at %zu threads "
              "(target >= 1x)\n",
              ksm_streaming_speedup, wide_threads);
  reporter.AddRow("headlines", {{"name", "ksm_streaming_speedup"},
                                {"value", ksm_streaming_speedup},
                                {"target", 1.0}});
  const std::string path = reporter.WriteJson();
  if (!path.empty()) {
    std::printf("wrote %s\n", path.c_str());
  }
}

std::vector<std::size_t> ParseArgs(int argc, char** argv) {
  bool quick = false;
  std::string spec;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      spec = argv[i + 1];
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    }
  }
  if (quick) {
    // CI regression gate: one repeat, short simulated windows, sweep endpoints
    // only. Rates and ratios stay comparable to the full run; raw counts don't.
    g_repeats = 1;
    g_run_time = 20 * kSecond;
    g_churn_steps = 8;
  }
  if (spec.empty()) {
    spec = quick ? "1,8" : "1,2,4,8";
  }
  std::vector<std::size_t> threads;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t next = spec.find(',', pos);
    if (next == std::string::npos) next = spec.size();
    const long v = std::strtol(spec.substr(pos, next - pos).c_str(), nullptr, 10);
    if (v > 0) threads.push_back(static_cast<std::size_t>(v));
    pos = next + 1;
  }
  if (threads.empty()) threads.push_back(1);
  return threads;
}

}  // namespace
}  // namespace vusion

int main(int argc, char** argv) {
  // The env overrides exist for CI; the bench owns its thread counts and modes.
  unsetenv("VUSION_SCAN_THREADS");
  unsetenv("VUSION_DELTA_SCAN");
  unsetenv("VUSION_SCAN_STREAMING");
  unsetenv("VUSION_SCAN_CHUNK");
  vusion::Run(vusion::ParseArgs(argc, argv));
  return 0;
}
