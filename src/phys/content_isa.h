// ISA-dispatched content primitives for the scan hot loop: page hashing,
// three-way compare, and zero detection over whole 4 KB pages.
//
// The hash is a fixed 8-lane FNV variant: the page is read as 512 little-endian
// 64-bit words, striped across 8 independent FNV-1a lanes (lane i absorbs words
// i, i+8, i+16, ...), and the lanes are folded through a SplitMix64 finalizer
// into one 64-bit digest. Every implementation — scalar, wordwise, AVX2 —
// computes this exact function, so the digest is a property of the page bytes,
// never of the host CPU. Host fingerprints differ from the old byte-loop FNV-1a,
// which is fine: nothing simulated depends on concrete hash values, only on
// equal-content collision behaviour (FingerprintParityTest).
//
// Dispatch: ActiveContentOps() picks the best implementation compiled in and
// supported by the CPU, overridable with VUSION_CONTENT_ISA=scalar|wordwise|avx2
// for ablation. Compiling with VUSION_DISABLE_AVX2 removes the AVX2 kernels
// entirely (the portable CI leg); requesting an unavailable ISA falls back to
// wordwise. All entry points are stateless and thread-safe — phase-1 scan
// workers call them concurrently.

#ifndef VUSION_SRC_PHYS_CONTENT_ISA_H_
#define VUSION_SRC_PHYS_CONTENT_ISA_H_

#include <cstddef>
#include <cstdint>

namespace vusion {

enum class ContentIsa { kScalar, kWordwise, kAvx2 };

// Function table for one implementation. Pages are exactly 4096 bytes.
// compare_pages returns strict -1/0/1 (memcmp sign, normalized).
struct ContentOps {
  ContentIsa isa;
  const char* name;
  std::uint64_t (*hash_page)(const std::uint8_t* page);
  int (*compare_pages)(const std::uint8_t* a, const std::uint8_t* b);
  bool (*is_zero)(const std::uint8_t* page);
};

// Table for a specific ISA. Requesting kAvx2 when it is compiled out or the CPU
// lacks it returns the wordwise table (check .isa to detect the fallback).
const ContentOps& GetContentOps(ContentIsa isa);

// Process-wide active table: best available ISA, overridden by the
// VUSION_CONTENT_ISA environment variable. Resolved once, then cached.
const ContentOps& ActiveContentOps();

// Hash of the all-zero page under the lane hash (computed once, cached).
std::uint64_t ZeroPageHash();

// Expands a pattern seed into 4096 bytes (the SplitMix64 word stream shared
// with PatternByte). `out` must hold kPageSize bytes.
void ExpandPattern(std::uint64_t seed, std::uint8_t* out);

// Word w (8 bytes) of the pattern stream for `seed`.
std::uint64_t PatternWord(std::uint64_t seed, std::size_t word_index);

const char* ContentIsaName(ContentIsa isa);

}  // namespace vusion

#endif  // VUSION_SRC_PHYS_CONTENT_ISA_H_
