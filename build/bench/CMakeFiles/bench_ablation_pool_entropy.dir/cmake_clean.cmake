file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_pool_entropy.dir/bench_ablation_pool_entropy.cc.o"
  "CMakeFiles/bench_ablation_pool_entropy.dir/bench_ablation_pool_entropy.cc.o.d"
  "bench_ablation_pool_entropy"
  "bench_ablation_pool_entropy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_pool_entropy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
