#include "src/workload/postmark_workload.h"

namespace vusion {

PostmarkWorkload::PostmarkWorkload(Process& process, PageCache& cache, const Config& config,
                                   std::uint64_t seed)
    : process_(&process), cache_(&cache), config_(config), rng_(seed) {}

PostmarkResult PostmarkWorkload::Run() {
  Machine& machine = process_->machine();
  LatencyModel& lm = machine.latency();
  const SimTime start = machine.clock().now();

  for (std::uint64_t tx = 0; tx < config_.transactions; ++tx) {
    lm.Charge(config_.per_tx_fs_overhead);
    const std::uint64_t file = rng_.NextBelow(config_.file_pool);
    const auto pages = static_cast<std::uint32_t>(1 + rng_.NextBelow(config_.max_file_pages));
    switch (rng_.NextBelow(4)) {
      case 0:  // create/overwrite: write all pages
        for (std::uint32_t p = 0; p < pages; ++p) {
          cache_->WritePage(file, p, tx);
        }
        break;
      case 1:  // read whole file
        for (std::uint32_t p = 0; p < pages; ++p) {
          cache_->ReadPage(file, p);
        }
        break;
      case 2:  // append one page
        cache_->WritePage(file, pages - 1, tx);
        break;
      default:  // delete
        cache_->DeleteFile(file);
        break;
    }
  }

  PostmarkResult result;
  result.transactions = config_.transactions;
  const SimTime elapsed = machine.clock().now() - start;
  if (elapsed > 0) {
    result.tx_per_s =
        static_cast<double>(config_.transactions) / (static_cast<double>(elapsed) / 1e9);
  }
  return result;
}

}  // namespace vusion
