
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/ks_test.cc" "src/CMakeFiles/vusion_sim.dir/sim/ks_test.cc.o" "gcc" "src/CMakeFiles/vusion_sim.dir/sim/ks_test.cc.o.d"
  "/root/repo/src/sim/latency_model.cc" "src/CMakeFiles/vusion_sim.dir/sim/latency_model.cc.o" "gcc" "src/CMakeFiles/vusion_sim.dir/sim/latency_model.cc.o.d"
  "/root/repo/src/sim/rng.cc" "src/CMakeFiles/vusion_sim.dir/sim/rng.cc.o" "gcc" "src/CMakeFiles/vusion_sim.dir/sim/rng.cc.o.d"
  "/root/repo/src/sim/stats.cc" "src/CMakeFiles/vusion_sim.dir/sim/stats.cc.o" "gcc" "src/CMakeFiles/vusion_sim.dir/sim/stats.cc.o.d"
  "/root/repo/src/sim/trace.cc" "src/CMakeFiles/vusion_sim.dir/sim/trace.cc.o" "gcc" "src/CMakeFiles/vusion_sim.dir/sim/trace.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
