#include "src/workload/apache_workload.h"

#include <algorithm>

#include "src/sim/stats.h"

namespace vusion {

namespace {
constexpr std::uint64_t kWorkerTemplateSeed = 0x40ac4e00ULL;
}

ApacheWorkload::ApacheWorkload(Process& server, const Config& config, std::uint64_t seed)
    : server_(&server), config_(config), rng_(seed) {
  cache_ = std::make_unique<PageCache>(server, config.page_cache_capacity);
  for (std::size_t i = 0; i < config.initial_workers; ++i) {
    SpawnWorker();
  }
}

void ApacheWorkload::SpawnWorker() {
  // A forked worker: most pages identical to every other worker (the httpd image
  // and preloaded modules), some private scratch.
  const VirtAddr region = server_->AllocateRegion(config_.worker_pages, PageType::kAnonymous,
                                                  /*mergeable=*/true, /*thp_eligible=*/true);
  for (std::size_t i = 0; i < config_.worker_pages; ++i) {
    const std::uint64_t seed = rng_.NextBool(config_.worker_shared_frac)
                                   ? kWorkerTemplateSeed + i
                                   : rng_.Next();
    server_->SetupMapPattern(VaddrToVpn(region) + i, seed);
  }
  worker_regions_.push_back(region);
}

SimTime ApacheWorkload::ServeRequest() {
  Machine& machine = server_->machine();
  LatencyModel& lm = machine.latency();
  const SimTime start = machine.clock().now();

  lm.Charge(config_.base_service);
  // Round-robin worker touches its hot pages (request parsing, buffers).
  const VirtAddr worker = worker_regions_[next_worker_++ % worker_regions_.size()];
  for (std::size_t i = 0; i < config_.worker_touch_pages; ++i) {
    const std::size_t page = rng_.NextBelow(config_.worker_pages / 4);  // hot quarter
    server_->Write64(worker + page * kPageSize, start + i);
  }
  // Zipf-ish file popularity: squaring the uniform skews toward low file ids.
  const double u = rng_.NextDouble();
  const auto file = static_cast<std::uint64_t>(u * u * static_cast<double>(config_.files));
  for (std::uint32_t p = 0; p < config_.file_pages; ++p) {
    cache_->ReadPage(file, p);
  }
  return machine.clock().now() - start;
}

ApacheResult ApacheWorkload::Run(SimTime duration, SimTime sample_interval,
                                 const std::function<void()>& sample) {
  Machine& machine = server_->machine();
  const SimTime start = machine.clock().now();
  const SimTime end = start + duration;
  SimTime next_spawn = start + config_.worker_spawn_interval;
  SimTime next_sample = sample_interval > 0 ? start : ~SimTime{0};

  std::vector<double> latencies;
  while (machine.clock().now() < end) {
    if (machine.clock().now() >= next_spawn && worker_regions_.size() < config_.max_workers) {
      SpawnWorker();
      next_spawn += config_.worker_spawn_interval;
    }
    if (machine.clock().now() >= next_sample) {
      sample();
      next_sample += sample_interval;
    }
    latencies.push_back(static_cast<double>(ServeRequest()));
  }

  ApacheResult result;
  result.requests = latencies.size();
  const double elapsed_s = static_cast<double>(machine.clock().now() - start) / 1e9;
  if (elapsed_s > 0 && !latencies.empty()) {
    // Closed-loop: `concurrency` connections each waiting one service time.
    result.kreq_per_s = static_cast<double>(config_.concurrency) *
                        static_cast<double>(latencies.size()) /
                        (elapsed_s * 1000.0);
  }
  // Per-connection latency includes its queueing behind the single service pipe.
  auto to_ms = [this](double ns) {
    return ns * static_cast<double>(config_.concurrency) / 1e6;
  };
  result.lat_p75_ms = to_ms(Percentile(latencies, 75));
  result.lat_p90_ms = to_ms(Percentile(latencies, 90));
  result.lat_p99_ms = to_ms(Percentile(latencies, 99));
  return result;
}

}  // namespace vusion
