file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_wse.dir/bench_ablation_wse.cc.o"
  "CMakeFiles/bench_ablation_wse.dir/bench_ablation_wse.cc.o.d"
  "bench_ablation_wse"
  "bench_ablation_wse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_wse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
