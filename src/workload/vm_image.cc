#include "src/workload/vm_image.h"

#include <vector>

namespace vusion {

namespace {

std::uint64_t MixSeed(std::uint64_t a, std::uint64_t b) {
  std::uint64_t x = a ^ (b * 0x9e3779b97f4a7c15ULL);
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// Category tags keep seed namespaces disjoint.
constexpr std::uint64_t kKernelTag = 0x11;
constexpr std::uint64_t kCacheTag = 0x22;
constexpr std::uint64_t kStaleTag = 0x33;
constexpr std::uint64_t kAnonTag = 0x44;

// Seed 0 marks a zero-filled page.
constexpr std::uint64_t kZeroContent = 0;

// Maps a region from precomputed per-page content seeds, using huge pages for
// full aligned chunks when requested (KVM guests' memory is one THP-backed
// host-anonymous region, so guest page cache and free pages ride on THPs too).
void MapRegion(Process& vm, VirtAddr base, const std::vector<std::uint64_t>& seeds,
               bool huge) {
  const Vpn base_vpn = VaddrToVpn(base);
  std::size_t i = 0;
  if (huge) {
    for (; i + kPagesPerHugePage <= seeds.size(); i += kPagesPerHugePage) {
      if (!vm.SetupMapHugeSeeds(base_vpn + i,
                                std::span(seeds.data() + i, kPagesPerHugePage))) {
        break;  // no contiguous block; fall back to small pages
      }
    }
  }
  for (; i < seeds.size(); ++i) {
    if (seeds[i] == kZeroContent) {
      vm.SetupMapZero(base_vpn + i);
    } else {
      vm.SetupMapPattern(base_vpn + i, seeds[i]);
    }
  }
}

}  // namespace

std::shared_ptr<const VmImageTemplate> VmImage::ComputeTemplate(const VmImageSpec& spec,
                                                                std::uint64_t instance_seed) {
  auto tmpl = std::make_shared<VmImageTemplate>();
  tmpl->spec = spec;
  Rng rng(MixSeed(instance_seed, 0xb007));

  const auto kernel_pages = static_cast<std::uint64_t>(spec.kernel_frac * spec.total_pages);
  const auto cache_pages =
      static_cast<std::uint64_t>(spec.page_cache_frac * spec.total_pages);
  const auto buddy_pages = static_cast<std::uint64_t>(spec.buddy_frac * spec.total_pages);
  const std::uint64_t anon_pages =
      spec.total_pages - kernel_pages - cache_pages - buddy_pages;

  // Guest kernel: identical across all VMs of the same distro.
  tmpl->kernel_seeds.resize(kernel_pages);
  for (std::uint64_t i = 0; i < kernel_pages; ++i) {
    tmpl->kernel_seeds[i] = MixSeed(spec.distro_seed, (kKernelTag << 32) | i);
  }

  // Page cache: distro base files, image stack files, and VM-private files.
  tmpl->cache_seeds.resize(cache_pages);
  for (std::uint64_t i = 0; i < cache_pages; ++i) {
    const double roll = rng.NextDouble();
    if (roll < spec.cache_distro_shared) {
      tmpl->cache_seeds[i] = MixSeed(spec.distro_seed, (kCacheTag << 32) | i);
    } else if (roll < spec.cache_distro_shared + spec.cache_stack_shared) {
      tmpl->cache_seeds[i] = MixSeed(spec.stack_seed, (kCacheTag << 32) | i);
    } else {
      tmpl->cache_seeds[i] = MixSeed(instance_seed, (kCacheTag << 32) | i);
    }
  }

  // Guest-free ("buddy") pages: mostly zero, some stale content from a small pool
  // of previously-used pages (identical within and across same-distro VMs).
  tmpl->buddy_seeds.resize(buddy_pages);
  for (std::uint64_t i = 0; i < buddy_pages; ++i) {
    tmpl->buddy_seeds[i] = rng.NextBool(spec.buddy_zero_frac)
                               ? kZeroContent
                               : MixSeed(spec.distro_seed, (kStaleTag << 32) | (i % 128));
  }

  // Anonymous process memory: shared-library images plus private heap.
  tmpl->anon_seeds.resize(anon_pages);
  for (std::uint64_t i = 0; i < anon_pages; ++i) {
    tmpl->anon_seeds[i] = rng.NextBool(spec.anon_shared_frac)
                              ? MixSeed(spec.stack_seed, (kAnonTag << 32) | i)
                              : MixSeed(instance_seed, (kAnonTag << 32) | i);
  }
  return tmpl;
}

Process& VmImage::BootFromTemplate(Machine& machine, const VmImageTemplate& tmpl) {
  const VmImageSpec& spec = tmpl.spec;
  Process& vm = machine.CreateProcess();
  MapRegion(vm,
            vm.AllocateRegion(tmpl.kernel_seeds.size(), PageType::kGuestKernel,
                              /*mergeable=*/true, spec.map_anon_as_thp),
            tmpl.kernel_seeds, spec.map_anon_as_thp);
  MapRegion(vm,
            vm.AllocateRegion(tmpl.cache_seeds.size(), PageType::kPageCache,
                              /*mergeable=*/true, spec.map_anon_as_thp),
            tmpl.cache_seeds, spec.map_anon_as_thp);
  MapRegion(vm,
            vm.AllocateRegion(tmpl.buddy_seeds.size(), PageType::kGuestBuddy,
                              /*mergeable=*/true, spec.map_anon_as_thp),
            tmpl.buddy_seeds, spec.map_anon_as_thp);
  MapRegion(vm,
            vm.AllocateRegion(tmpl.anon_seeds.size(), PageType::kAnonymous,
                              /*mergeable=*/true, spec.map_anon_as_thp),
            tmpl.anon_seeds, spec.map_anon_as_thp);
  return vm;
}

Process& VmImage::Boot(Machine& machine, const VmImageSpec& spec,
                       std::uint64_t instance_seed) {
  return BootFromTemplate(machine, *ComputeTemplate(spec, instance_seed));
}

VmImageSpec VmImage::CatalogImage(std::size_t index) {
  VmImageSpec spec;
  const std::size_t distro = index % 7;
  spec.distro_seed = 0xd15720 + distro;
  spec.stack_seed = 0x57ac4 + index;
  // Vary the composition a little per image so fusion opportunity differs.
  spec.page_cache_frac = 0.36 + 0.02 * static_cast<double>(index % 8);
  spec.buddy_frac = 0.22 + 0.02 * static_cast<double>(index % 6);
  spec.cache_distro_shared = 0.55 + 0.05 * static_cast<double>(distro % 4);
  return spec;
}

}  // namespace vusion
