// A guest page cache model: file pages cached in a dedicated mergeable VMA with LRU
// eviction. Page content is a deterministic function of (file id, page index), so
// VMs booted from the same image naturally cache identical file pages - the source
// of the ~52% page-cache share of fusion savings in the paper's Table 3.

#ifndef VUSION_SRC_KERNEL_PAGE_CACHE_H_
#define VUSION_SRC_KERNEL_PAGE_CACHE_H_

#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

#include "src/kernel/process.h"

namespace vusion {

class PageCache {
 public:
  // Reserves a `capacity_pages`-page mergeable VMA in the owning process.
  PageCache(Process& owner, std::uint64_t capacity_pages);

  // Timed read of one file page through the cache (fills on miss, possibly
  // evicting). Returns the first word of the page.
  std::uint64_t ReadPage(std::uint64_t file_id, std::uint32_t page_index);

  // Timed write; the page's cached copy diverges from the backing file.
  void WritePage(std::uint64_t file_id, std::uint32_t page_index, std::uint64_t value);

  // Drops all cached pages of the file (file deletion / truncation).
  void DeleteFile(std::uint64_t file_id);

  [[nodiscard]] std::size_t resident_pages() const { return entries_.size(); }
  [[nodiscard]] std::uint64_t hits() const { return hits_; }
  [[nodiscard]] std::uint64_t misses() const { return misses_; }

  // Deterministic content seed shared by all VMs caching the same file page.
  static std::uint64_t FileSeed(std::uint64_t file_id, std::uint32_t page_index);

 private:
  // Ensures the page is resident; returns its VPN.
  Vpn Ensure(std::uint64_t file_id, std::uint32_t page_index);
  static std::uint64_t Key(std::uint64_t file_id, std::uint32_t page_index) {
    return (file_id << 24) ^ page_index;
  }

  struct Entry {
    Vpn vpn;
    std::list<std::uint64_t>::iterator lru_it;
  };

  Process* owner_;
  Vpn region_start_;
  std::uint64_t capacity_;
  std::unordered_map<std::uint64_t, Entry> entries_;
  std::list<std::uint64_t> lru_;  // front = most recent, holds keys
  std::vector<Vpn> free_slots_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace vusion

#endif  // VUSION_SRC_KERNEL_PAGE_CACHE_H_
