#include "src/host/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <exception>

namespace vusion::host {

// Full definition of the opaque handle: one dispatched batch. Every field is
// guarded by ThreadPool::mu_ except done_items, which is additionally published
// with release stores so the single consumer can poll it without the lock.
class ThreadPool::Stream {
 public:
  enum class Mode : std::uint8_t { kChunks, kStriped };

  Body body;
  Mode mode = Mode::kChunks;
  std::size_t count = 0;
  std::size_t grain = 1;
  std::size_t next = 0;                  // kChunks: shared chunk-aligned cursor
  std::vector<std::size_t> stripe_pos;   // kStriped: per-stripe claim position
  std::size_t claimed = 0;               // kStriped: total tasks claimed
  std::size_t in_flight = 0;
  std::vector<std::uint8_t> chunk_done;  // kChunks, tracked: per-chunk done flag
  std::size_t done_chunks = 0;           // contiguously-done chunk prefix
  std::atomic<std::size_t> done_items{0};
  std::exception_ptr first_error;

  [[nodiscard]] bool AllClaimed() const {
    return mode == Mode::kChunks ? next >= count : claimed >= count;
  }
  [[nodiscard]] bool Finished() const { return AllClaimed() && in_flight == 0; }
};

ThreadPool::ThreadPool(std::size_t threads) {
  const std::size_t spawn = threads > 1 ? threads - 1 : 0;
  workers_.reserve(spawn);
  for (std::size_t i = 0; i < spawn; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

bool ThreadPool::AnyUnclaimedLocked() const {
  for (const Stream* s : live_) {
    if (!s->AllClaimed()) {
      return true;
    }
  }
  return false;
}

bool ThreadPool::ClaimLocked(Stream* s, std::size_t stripe, std::size_t* begin,
                             std::size_t* end) {
  if (s->mode == Stream::Mode::kChunks) {
    if (s->next >= s->count) {
      return false;
    }
    *begin = s->next;
    *end = std::min(s->count, s->next + s->grain);
    s->next = *end;
    ++s->in_flight;
    return true;
  }
  // Striped: own stripe first, then round-robin steal. Task t's home stripe is
  // t % stripes, and stripe sp hands out sp, sp + stripes, sp + 2*stripes, ...
  const std::size_t stripes = s->stripe_pos.size();
  for (std::size_t k = 0; k < stripes; ++k) {
    const std::size_t sp = (stripe + k) % stripes;
    const std::size_t task = sp + s->stripe_pos[sp] * stripes;
    if (task < s->count) {
      ++s->stripe_pos[sp];
      ++s->claimed;
      ++s->in_flight;
      *begin = task;
      *end = task + 1;
      return true;
    }
  }
  return false;
}

void ThreadPool::RunUnit(Stream* s, std::size_t begin, std::size_t end) {
  std::exception_ptr error;
  try {
    s->body(begin, end);
  } catch (...) {
    error = std::current_exception();
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (error != nullptr && s->first_error == nullptr) {
    s->first_error = error;
  }
  --s->in_flight;
  if (!s->chunk_done.empty()) {
    // A failed chunk still counts as done so the ticket prefix never stalls;
    // the error surfaces at JoinStream.
    s->chunk_done[begin / s->grain] = 1;
    while (s->done_chunks < s->chunk_done.size() && s->chunk_done[s->done_chunks] != 0) {
      ++s->done_chunks;
    }
    s->done_items.store(std::min(s->count, s->done_chunks * s->grain),
                        std::memory_order_release);
  }
  if (s->Finished()) {
    stream_done_.notify_all();
  }
}

void ThreadPool::WorkerLoop(std::size_t worker_id) {
  for (;;) {
    Stream* claimed = nullptr;
    std::size_t begin = 0;
    std::size_t end = 0;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_ready_.wait(lock, [this] { return shutdown_ || AnyUnclaimedLocked(); });
      if (shutdown_) {
        return;
      }
      for (Stream* s : live_) {
        if (ClaimLocked(s, worker_id, &begin, &end)) {
          claimed = s;
          break;
        }
      }
    }
    if (claimed != nullptr) {
      RunUnit(claimed, begin, end);
    }
  }
}

ThreadPool::Stream* ThreadPool::Submit(std::size_t count, std::size_t grain,
                                       bool striped, Body body,
                                       bool track_completion) {
  std::lock_guard<std::mutex> lock(mu_);
  Stream* s;
  if (!free_.empty()) {
    s = free_.back();
    free_.pop_back();
  } else {
    all_.push_back(std::make_unique<Stream>());
    s = all_.back().get();
  }
  s->body = body;
  s->mode = striped ? Stream::Mode::kStriped : Stream::Mode::kChunks;
  s->count = count;
  s->grain = std::max<std::size_t>(1, grain);
  s->next = 0;
  s->claimed = 0;
  s->in_flight = 0;
  s->done_chunks = 0;
  s->done_items.store(0, std::memory_order_relaxed);
  s->first_error = nullptr;
  if (striped) {
    s->stripe_pos.assign(thread_count(), 0);
    s->chunk_done.clear();
  } else if (track_completion) {
    s->chunk_done.assign((count + s->grain - 1) / s->grain, 0);
  } else {
    s->chunk_done.clear();
  }
  live_.push_back(s);
  work_ready_.notify_all();
  return s;
}

void ThreadPool::DrainAndJoin(Stream* s, std::size_t stripe) {
  for (;;) {
    std::size_t begin = 0;
    std::size_t end = 0;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (!ClaimLocked(s, stripe, &begin, &end)) {
        break;
      }
    }
    RunUnit(s, begin, end);
  }
  std::unique_lock<std::mutex> lock(mu_);
  stream_done_.wait(lock, [s] { return s->Finished(); });
  live_.erase(std::find(live_.begin(), live_.end(), s));
  free_.push_back(s);
  std::exception_ptr error = s->first_error;
  s->first_error = nullptr;
  lock.unlock();
  if (error != nullptr) {
    std::rethrow_exception(error);
  }
}

void ThreadPool::ParallelFor(std::size_t count, std::size_t grain, Body body) {
  if (count == 0) {
    return;
  }
  if (grain == 0) {
    // A few chunks per thread so dynamic dispatch can balance uneven chunk costs.
    grain = std::max<std::size_t>(1, count / (thread_count() * 4));
  }
  if (workers_.empty() || count <= grain) {
    body(0, count);
    return;
  }
  DrainAndJoin(Submit(count, grain, /*striped=*/false, body, /*track_completion=*/false),
               /*stripe=*/workers_.size());
}

void ThreadPool::ParallelTasks(std::size_t count, Body body) {
  if (count == 0) {
    return;
  }
  if (workers_.empty() || count == 1) {
    for (std::size_t t = 0; t < count; ++t) {
      body(t, t + 1);
    }
    return;
  }
  DrainAndJoin(Submit(count, /*grain=*/1, /*striped=*/true, body, /*track_completion=*/false),
               /*stripe=*/workers_.size());
}

ThreadPool::Stream* ThreadPool::BeginStream(std::size_t count, std::size_t grain,
                                            Body body) {
  return Submit(count, grain, /*striped=*/false, body, /*track_completion=*/true);
}

std::size_t ThreadPool::StreamReadyItems(const Stream* s) const {
  return s->done_items.load(std::memory_order_acquire);
}

bool ThreadPool::HelpStream(Stream* s) {
  std::size_t begin = 0;
  std::size_t end = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!ClaimLocked(s, workers_.size(), &begin, &end)) {
      return false;
    }
  }
  RunUnit(s, begin, end);
  return true;
}

void ThreadPool::JoinStream(Stream* s) { DrainAndJoin(s, workers_.size()); }

}  // namespace vusion::host
