#include "src/phys/physical_memory.h"

#include <gtest/gtest.h>

namespace vusion {
namespace {

TEST(PhysicalMemoryTest, PatternFillIsDeterministic) {
  PhysicalMemory mem(16);
  mem.FillPattern(0, 42);
  mem.FillPattern(1, 42);
  EXPECT_EQ(mem.Compare(0, 1), 0);
  EXPECT_EQ(mem.HashContent(0), mem.HashContent(1));
  for (std::size_t i = 0; i < 64; ++i) {
    EXPECT_EQ(mem.ReadByte(0, i), mem.ReadByte(1, i));
    EXPECT_EQ(mem.ReadByte(0, i), PatternByte(42, i));
  }
}

TEST(PhysicalMemoryTest, DifferentSeedsDiffer) {
  PhysicalMemory mem(16);
  mem.FillPattern(0, 1);
  mem.FillPattern(1, 2);
  EXPECT_NE(mem.Compare(0, 1), 0);
  EXPECT_NE(mem.HashContent(0), mem.HashContent(1));
}

TEST(PhysicalMemoryTest, CompareIsConsistentAntisymmetric) {
  PhysicalMemory mem(16);
  mem.FillPattern(0, 10);
  mem.FillPattern(1, 20);
  EXPECT_EQ(mem.Compare(0, 1), -mem.Compare(1, 0));
  EXPECT_EQ(mem.Compare(0, 0), 0);
}

TEST(PhysicalMemoryTest, ZeroFrames) {
  PhysicalMemory mem(16);
  mem.FillZero(0);
  mem.FillZero(1);
  EXPECT_TRUE(mem.IsZero(0));
  EXPECT_EQ(mem.Compare(0, 1), 0);
  EXPECT_EQ(mem.ReadU64(0, 128), 0u);
  mem.FillPattern(2, 5);
  EXPECT_FALSE(mem.IsZero(2));
  EXPECT_NE(mem.Compare(0, 2), 0);
}

TEST(PhysicalMemoryTest, WriteMaterializesAndChangesHash) {
  PhysicalMemory mem(16);
  mem.FillPattern(0, 7);
  const std::uint64_t before = mem.HashContent(0);
  EXPECT_EQ(mem.materialized_bytes(), 0u);
  mem.WriteU64(0, 256, 0xdeadbeef);
  EXPECT_EQ(mem.materialized_bytes(), kPageSize);
  EXPECT_NE(mem.HashContent(0), before);
  EXPECT_EQ(mem.ReadU64(0, 256), 0xdeadbeefu);
  // Bytes outside the write still follow the pattern.
  EXPECT_EQ(mem.ReadByte(0, 0), PatternByte(7, 0));
}

TEST(PhysicalMemoryTest, MaterializedEqualsPatternComparesEqual) {
  PhysicalMemory mem(16);
  mem.FillPattern(0, 9);
  mem.FillPattern(1, 9);
  // Materialize frame 1 with an identity write.
  const std::uint64_t word = mem.ReadU64(1, 0);
  mem.WriteU64(1, 0, word);
  EXPECT_EQ(mem.Compare(0, 1), 0);
  EXPECT_EQ(mem.HashContent(0), mem.HashContent(1));
}

TEST(PhysicalMemoryTest, CopyFrame) {
  PhysicalMemory mem(16);
  mem.FillPattern(0, 11);
  mem.WriteU64(0, 8, 1234);
  mem.FillPattern(1, 99);
  mem.CopyFrame(1, 0);
  EXPECT_EQ(mem.Compare(0, 1), 0);
  EXPECT_EQ(mem.ReadU64(1, 8), 1234u);
  // Copy of a pattern frame stays cheap (no materialization).
  mem.FillPattern(2, 13);
  mem.CopyFrame(3, 2);
  EXPECT_EQ(mem.Compare(2, 3), 0);
}

TEST(PhysicalMemoryTest, FlipBit) {
  PhysicalMemory mem(16);
  mem.FillPattern(0, 21);
  const std::uint8_t before = mem.ReadByte(0, 100);
  mem.FlipBit(0, 100 * 8 + 3);
  EXPECT_EQ(mem.ReadByte(0, 100), before ^ 0x08);
  mem.FlipBit(0, 100 * 8 + 3);
  EXPECT_EQ(mem.ReadByte(0, 100), before);
}

TEST(PhysicalMemoryTest, HashCacheInvalidation) {
  PhysicalMemory mem(16);
  mem.FillPattern(0, 31);
  const std::uint64_t h1 = mem.HashContent(0);
  EXPECT_EQ(mem.HashContent(0), h1);  // cached
  mem.FlipBit(0, 5);
  const std::uint64_t h2 = mem.HashContent(0);
  EXPECT_NE(h2, h1);
  mem.FlipBit(0, 5);
  EXPECT_EQ(mem.HashContent(0), h1);  // back to original content
}

TEST(PhysicalMemoryTest, AllocationAccounting) {
  PhysicalMemory mem(8);
  EXPECT_EQ(mem.allocated_count(), 0u);
  mem.MarkAllocated(3);
  mem.MarkAllocated(5);
  EXPECT_EQ(mem.allocated_count(), 2u);
  EXPECT_TRUE(mem.allocated(3));
  mem.MarkFree(3);
  EXPECT_EQ(mem.allocated_count(), 1u);
  EXPECT_FALSE(mem.allocated(3));
}

TEST(PhysicalMemoryTest, Refcounting) {
  PhysicalMemory mem(8);
  mem.MarkAllocated(0);
  mem.SetRefcount(0, 2);
  EXPECT_EQ(mem.IncRef(0), 3u);
  EXPECT_EQ(mem.DecRef(0), 2u);
  EXPECT_EQ(mem.refcount(0), 2u);
}

TEST(PhysicalMemoryTest, ZeroVsPatternCompareOrdering) {
  PhysicalMemory mem(8);
  mem.FillZero(0);
  mem.FillPattern(1, 3);
  const int ab = mem.Compare(0, 1);
  EXPECT_NE(ab, 0);
  // Consistent with byte-wise comparison of the first differing byte.
  std::size_t i = 0;
  while (PatternByte(3, i) == 0) {
    ++i;
  }
  EXPECT_EQ(ab, PatternByte(3, i) > 0 ? -1 : 1);
}


TEST(PhysicalMemoryTest, SnapshotRestoreRoundTripsAllKinds) {
  PhysicalMemory mem(16);
  // Zero frame.
  mem.FillZero(0);
  // Pattern frame.
  mem.FillPattern(1, 77);
  // Materialized frame.
  mem.FillPattern(2, 78);
  mem.WriteU64(2, 96, 0x5a5a);
  for (FrameId f = 0; f < 3; ++f) {
    const PhysicalMemory::ContentSnapshot snapshot = mem.Snapshot(f);
    mem.FillPattern(8, 0xdead);  // scribble a scratch frame
    mem.Restore(8, snapshot);
    EXPECT_EQ(mem.Compare(f, 8), 0) << "kind " << f;
    EXPECT_EQ(mem.HashContent(f), mem.HashContent(8));
  }
}

TEST(PhysicalMemoryTest, SnapshotsEqualSemantics) {
  PhysicalMemory mem(16);
  mem.FillPattern(0, 5);
  mem.FillPattern(1, 5);
  mem.FillPattern(2, 6);
  // Materialized copy of the same content.
  mem.FillPattern(3, 5);
  mem.WriteU64(3, 0, mem.ReadU64(3, 0));  // identity write materializes
  const auto s0 = mem.Snapshot(0);
  const auto s1 = mem.Snapshot(1);
  const auto s2 = mem.Snapshot(2);
  const auto s3 = mem.Snapshot(3);
  EXPECT_TRUE(PhysicalMemory::SnapshotsEqual(s0, s1));
  EXPECT_FALSE(PhysicalMemory::SnapshotsEqual(s0, s2));
  EXPECT_TRUE(PhysicalMemory::SnapshotsEqual(s0, s3));  // pattern vs materialized
  mem.FillZero(4);
  mem.FillZero(5);
  EXPECT_TRUE(PhysicalMemory::SnapshotsEqual(mem.Snapshot(4), mem.Snapshot(5)));
  EXPECT_FALSE(PhysicalMemory::SnapshotsEqual(mem.Snapshot(4), s0));
}

// Every mutating operation must bump the frame's content generation; the memoized
// hash is keyed on the generation, so a missed bump would serve a stale hash and
// silently mis-order the fingerprint trees.
TEST(PhysicalMemoryTest, ContentGenerationBumpsOnEveryMutatingOp) {
  PhysicalMemory mem(16);
  const std::uint8_t data[8] = {1, 2, 3, 4, 5, 6, 7, 8};
  const PhysicalMemory::ContentSnapshot snapshot = [&] {
    PhysicalMemory scratch(1);
    scratch.FillPattern(0, 99);
    return scratch.Snapshot(0);
  }();
  mem.FillPattern(1, 7);  // CopyFrame source

  struct Op {
    const char* name;
    void (*run)(PhysicalMemory&, const std::uint8_t*,
                const PhysicalMemory::ContentSnapshot&);
  };
  const Op ops[] = {
      {"FillZero", [](PhysicalMemory& m, const std::uint8_t*,
                      const PhysicalMemory::ContentSnapshot&) { m.FillZero(0); }},
      {"FillPattern", [](PhysicalMemory& m, const std::uint8_t*,
                         const PhysicalMemory::ContentSnapshot&) { m.FillPattern(0, 5); }},
      {"WriteBytes",
       [](PhysicalMemory& m, const std::uint8_t* d,
          const PhysicalMemory::ContentSnapshot&) { m.WriteBytes(0, 16, {d, 8}); }},
      {"WriteU64", [](PhysicalMemory& m, const std::uint8_t*,
                      const PhysicalMemory::ContentSnapshot&) { m.WriteU64(0, 8, 0xabcd); }},
      {"FlipBit", [](PhysicalMemory& m, const std::uint8_t*,
                     const PhysicalMemory::ContentSnapshot&) { m.FlipBit(0, 12345); }},
      {"CopyFrame", [](PhysicalMemory& m, const std::uint8_t*,
                       const PhysicalMemory::ContentSnapshot&) { m.CopyFrame(0, 1); }},
      {"Restore",
       [](PhysicalMemory& m, const std::uint8_t*,
          const PhysicalMemory::ContentSnapshot& s) { m.Restore(0, s); }},
  };
  for (const Op& op : ops) {
    const std::uint64_t before = mem.content_generation(0);
    op.run(mem, data, snapshot);
    EXPECT_GT(mem.content_generation(0), before) << op.name;
  }
}

// The memoized hash must track content: recompute after mutation, not before.
TEST(PhysicalMemoryTest, HashMemoizationInvalidatedByWrites) {
  PhysicalMemory mem(4);
  mem.FillPattern(0, 1234);
  const std::uint64_t h0 = mem.HashContent(0);
  EXPECT_EQ(mem.HashContent(0), h0);  // memoized: stable without mutation
  mem.WriteU64(0, 0, ~mem.ReadU64(0, 0));
  const std::uint64_t h1 = mem.HashContent(0);
  EXPECT_NE(h1, h0);
  mem.WriteU64(0, 0, ~mem.ReadU64(0, 0));  // write the original value back
  EXPECT_EQ(mem.HashContent(0), h0);
}

// A single Rowhammer flip must change the content hash (FlipBit materializes and
// mutates in place; a stale memoized hash here would hide the corruption from
// every fingerprint-ordered tree).
TEST(PhysicalMemoryTest, FlipBitChangesHashContent) {
  PhysicalMemory mem(4);
  mem.FillPattern(0, 42);
  const std::uint64_t before = mem.HashContent(0);
  mem.FlipBit(0, 8 * 100 + 3);
  const std::uint64_t after = mem.HashContent(0);
  EXPECT_NE(after, before);
  mem.FlipBit(0, 8 * 100 + 3);  // flip back: content and hash return
  EXPECT_EQ(mem.HashContent(0), before);
}

// CopyFrame propagates the source's memoized hash to the destination.
TEST(PhysicalMemoryTest, CopyFramePropagatesHash) {
  PhysicalMemory mem(4);
  mem.FillPattern(0, 77);
  const std::uint64_t h = mem.HashContent(0);
  mem.CopyFrame(1, 0);
  EXPECT_EQ(mem.HashContent(1), h);
  EXPECT_EQ(mem.Compare(0, 1), 0);
}

// The seed-keyed pattern hash cache is bounded: filling it past the cap forces a
// clear (counted as an eviction), and repeated seeds count as hits.
TEST(PhysicalMemoryTest, PatternHashCacheIsBoundedAndCounted) {
  PhysicalMemory mem(4);
  mem.FillPattern(0, 1);
  (void)mem.HashContent(0);
  (void)mem.HashContent(0);  // memoized on the frame: no second cache probe
  mem.FillPattern(1, 1);
  (void)mem.HashContent(1);  // same seed, new frame: cache hit
  PhysicalMemory::PatternHashCacheStats stats = mem.pattern_hash_cache_stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.evictions, 0u);

  for (std::uint64_t seed = 100; seed < 100 + PhysicalMemory::kPatternHashCacheCap + 8;
       ++seed) {
    mem.FillPattern(2, seed);
    (void)mem.HashContent(2);
  }
  stats = mem.pattern_hash_cache_stats();
  EXPECT_GE(stats.evictions, 1u);
  EXPECT_LE(stats.entries, PhysicalMemory::kPatternHashCacheCap);
}

// Regression test for the wholesale clear(): eviction is segmented (hot/cold
// rotation), so a seed touched between rotations stays resident instead of
// being dropped with the rest of the cache.
TEST(PhysicalMemoryTest, PatternHashCacheKeepsTouchedSeedsAcrossRotation) {
  PhysicalMemory mem(4);
  mem.FillPattern(0, 42);
  const std::uint64_t h42 = mem.HashContent(0);
  std::uint64_t next_seed = 1000;
  for (int round = 0; round < 3; ++round) {
    // Enough distinct seeds to rotate the segments at least once.
    for (std::uint64_t i = 0; i < PhysicalMemory::kPatternHashCacheCap / 2 + 8; ++i) {
      mem.FillPattern(1, next_seed++);
      (void)mem.HashContent(1);
    }
    const auto before = mem.pattern_hash_cache_stats();
    mem.FillPattern(2, 42);
    EXPECT_EQ(mem.HashContent(2), h42);
    const auto after = mem.pattern_hash_cache_stats();
    EXPECT_EQ(after.hits, before.hits + 1) << "seed 42 fell out in round " << round;
  }
  const auto stats = mem.pattern_hash_cache_stats();
  EXPECT_GE(stats.evictions, 3u);
  EXPECT_LE(stats.entries, PhysicalMemory::kPatternHashCacheCap);
}

}  // namespace
}  // namespace vusion
