// Shared vocabulary between the machine-wide InvariantAuditor (src/chaos) and
// the per-engine AuditInvariants hooks (src/fusion). Header-only so the fusion
// library can implement its hooks without linking against the chaos harness.
//
// An AuditContext carries the frame census the auditor computed from the page
// tables (how many PTEs map each frame, how many of those are writable) plus an
// ownership ledger: every component that holds frames outside the page tables
// (fusion trees, randomized pool, deferred-free queue, swap cache) claims them
// via OwnFrame, and the auditor then checks that mapped, page-table, and
// engine-owned frames exactly partition the allocated set.

#ifndef VUSION_SRC_CHAOS_AUDIT_H_
#define VUSION_SRC_CHAOS_AUDIT_H_

#include <cstdint>
#include <sstream>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/phys/frame.h"

namespace vusion {

class Machine;

struct AuditContext {
  Machine* machine = nullptr;
  // Indexed by frame: number of small-page PTE slots mapping the frame (huge
  // mappings expanded to their subframes; swapped-out markers excluded).
  const std::vector<std::uint32_t>* mapping_count = nullptr;
  // Indexed by frame: number of those mappings that are writable.
  const std::vector<std::uint32_t>* writable_count = nullptr;

  std::uint64_t checks = 0;
  std::vector<std::string> violations;

  [[nodiscard]] std::uint32_t mapped(FrameId frame) const {
    return (*mapping_count)[frame];
  }
  [[nodiscard]] std::uint32_t writable(FrameId frame) const {
    return (*writable_count)[frame];
  }

  // Records one invariant evaluation. The message callback is only invoked on
  // failure so audit hot loops never pay for string formatting.
  template <typename MessageFn>
  bool Check(bool ok, MessageFn&& message) {
    ++checks;
    if (!ok) {
      violations.push_back(message());
    }
    return ok;
  }

  // Claims a frame for a non-page-table owner; flags double ownership.
  void OwnFrame(FrameId frame, const char* owner) {
    ++checks;
    auto [it, inserted] = engine_owned.emplace(frame, owner);
    if (!inserted) {
      std::ostringstream msg;
      msg << "frame " << frame << " owned by both " << it->second << " and "
          << owner;
      violations.push_back(msg.str());
    }
  }

  [[nodiscard]] bool ok() const { return violations.empty(); }

  std::unordered_map<FrameId, const char*> engine_owned;
};

}  // namespace vusion

#endif  // VUSION_SRC_CHAOS_AUDIT_H_
