file(REMOVE_RECURSE
  "CMakeFiles/vusion_engine_test.dir/vusion_engine_test.cc.o"
  "CMakeFiles/vusion_engine_test.dir/vusion_engine_test.cc.o.d"
  "vusion_engine_test"
  "vusion_engine_test.pdb"
  "vusion_engine_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vusion_engine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
