# Empty dependencies file for ksm_test.
# This may be replaced when dependencies are built.
