
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/apache_workload.cc" "src/CMakeFiles/vusion_workload.dir/workload/apache_workload.cc.o" "gcc" "src/CMakeFiles/vusion_workload.dir/workload/apache_workload.cc.o.d"
  "/root/repo/src/workload/kv_workload.cc" "src/CMakeFiles/vusion_workload.dir/workload/kv_workload.cc.o" "gcc" "src/CMakeFiles/vusion_workload.dir/workload/kv_workload.cc.o.d"
  "/root/repo/src/workload/parsec_workload.cc" "src/CMakeFiles/vusion_workload.dir/workload/parsec_workload.cc.o" "gcc" "src/CMakeFiles/vusion_workload.dir/workload/parsec_workload.cc.o.d"
  "/root/repo/src/workload/postmark_workload.cc" "src/CMakeFiles/vusion_workload.dir/workload/postmark_workload.cc.o" "gcc" "src/CMakeFiles/vusion_workload.dir/workload/postmark_workload.cc.o.d"
  "/root/repo/src/workload/scenario.cc" "src/CMakeFiles/vusion_workload.dir/workload/scenario.cc.o" "gcc" "src/CMakeFiles/vusion_workload.dir/workload/scenario.cc.o.d"
  "/root/repo/src/workload/spec_workload.cc" "src/CMakeFiles/vusion_workload.dir/workload/spec_workload.cc.o" "gcc" "src/CMakeFiles/vusion_workload.dir/workload/spec_workload.cc.o.d"
  "/root/repo/src/workload/stream_workload.cc" "src/CMakeFiles/vusion_workload.dir/workload/stream_workload.cc.o" "gcc" "src/CMakeFiles/vusion_workload.dir/workload/stream_workload.cc.o.d"
  "/root/repo/src/workload/vm_image.cc" "src/CMakeFiles/vusion_workload.dir/workload/vm_image.cc.o" "gcc" "src/CMakeFiles/vusion_workload.dir/workload/vm_image.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/vusion_fusion.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vusion_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vusion_mmu.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vusion_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vusion_dram.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vusion_phys.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vusion_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
