// Virtual time base for the whole simulation.
//
// Every modeled hardware and kernel operation advances a VirtualClock instead of
// consuming wall-clock time. Attacks "time" operations by sampling the clock around
// them, which makes every side-channel experiment in this repository deterministic
// and reproducible from a seed.

#ifndef VUSION_SRC_SIM_CLOCK_H_
#define VUSION_SRC_SIM_CLOCK_H_

#include <cstdint>

namespace vusion {

// Nanoseconds of simulated time.
using SimTime = std::uint64_t;

constexpr SimTime kNanosecond = 1;
constexpr SimTime kMicrosecond = 1000 * kNanosecond;
constexpr SimTime kMillisecond = 1000 * kMicrosecond;
constexpr SimTime kSecond = 1000 * kMillisecond;

// Monotonic simulated clock. Cheap to copy a reading; a single instance is owned
// by the Machine and shared by reference.
class VirtualClock {
 public:
  VirtualClock() = default;

  // Advances simulated time. Used by the latency model and by daemons that sleep.
  void Advance(SimTime delta) { now_ += delta; }

  [[nodiscard]] SimTime now() const { return now_; }

  // Resets to t=0; only used by tests that reuse a machine.
  void Reset() { now_ = 0; }

 private:
  SimTime now_ = 0;
};

}  // namespace vusion

#endif  // VUSION_SRC_SIM_CLOCK_H_
