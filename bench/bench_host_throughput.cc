// Host (wall-clock) scan throughput: how fast the *simulator* chews through the
// scan hot path, in scanned pages per host second, with fingerprint-ordered trees
// versus the reference byte-ordered ablation (FusionConfig::byte_ordered_trees).
//
// This measures the simulator's own cost, not modeled latency: simulated
// statistics and charged latencies are bit-identical in both modes (see the
// fingerprint-parity test); only the host time differs. The scenario is the
// diverse-VM setup (catalog images, mostly-idle guests) where content comparisons
// dominate the scan path. Results go to stdout and BENCH_host_throughput.json.

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"

namespace vusion {
namespace {

constexpr std::size_t kVms = 4;            // 2-4 VMs per the harness spec
constexpr std::size_t kGuestPages = 4096;  // 16 MB guests
constexpr SimTime kRunTime = 120 * kSecond;

// Diverse-VM content model: near-duplicate pages. Every page shares one long
// common prefix (think zeroed-then-initialized structures, common library/page
// cache contents) and differs only in a trailing 8-byte tag: one quarter are
// cross-VM duplicate groups (fusable), the rest unique per (vm, page). This is
// the realistic worst case for byte-ordered trees — every tree comparison scans
// ~4 KB before the first differing byte — and the best case fingerprints target:
// one cached-hash integer compare.
constexpr std::uint64_t kCommonSeed = 0xc0ffee;
constexpr std::size_t kTailOffset = kPageSize - 8;
constexpr std::size_t kDuplicateGroups = 512;

struct RunResult {
  std::string engine;
  std::string mode;
  std::uint64_t pages_scanned = 0;
  std::uint64_t merges = 0;
  std::uint64_t frames_saved = 0;
  double wall_seconds = 0.0;
  double pages_per_second = 0.0;
  double end_to_end_seconds = 0.0;  // whole scenario incl. boot
};

RunResult RunOne(EngineKind kind, bool byte_ordered) {
  const auto t0 = std::chrono::steady_clock::now();
  ScenarioConfig config = EvalScenario(kind);
  config.machine.frame_count = 1u << 17;  // 512 MB host
  config.fusion.pages_per_wake = 400;     // scan-heavy: stress the hot path
  config.fusion.pool_frames = 8192;
  config.fusion.byte_ordered_trees = byte_ordered;
  Scenario scenario(config);
  for (std::size_t p = 0; p < kVms; ++p) {
    Process& vm = scenario.machine().CreateProcess();
    const VirtAddr base =
        vm.AllocateRegion(kGuestPages, PageType::kAnonymous, true, false);
    for (std::size_t i = 0; i < kGuestPages; ++i) {
      vm.SetupMapPattern(VaddrToVpn(base) + i, kCommonSeed);
      // The tail write materializes the page: common prefix + distinguishing tag.
      const bool duplicate = i % 4 == 0;
      const std::uint64_t tag = duplicate
                                    ? 0x1000000 + i % kDuplicateGroups
                                    : 0x2000000 + (p << 32) + i;
      vm.Write64(base + i * kPageSize + kTailOffset, tag);
    }
  }

  const auto t1 = std::chrono::steady_clock::now();
  scenario.RunFor(kRunTime);
  const auto t2 = std::chrono::steady_clock::now();

  RunResult result;
  result.engine = scenario.engine()->name();
  result.mode = byte_ordered ? "byte-ordered" : "fingerprint";
  result.pages_scanned = scenario.engine()->stats().pages_scanned;
  result.merges = scenario.engine()->stats().merges;
  result.frames_saved = scenario.engine()->frames_saved();
  result.wall_seconds = std::chrono::duration<double>(t2 - t1).count();
  result.pages_per_second =
      result.wall_seconds > 0 ? static_cast<double>(result.pages_scanned) / result.wall_seconds
                              : 0.0;
  result.end_to_end_seconds = std::chrono::duration<double>(t2 - t0).count();
  return result;
}

void Run() {
  PrintHeader("Host scan throughput: fingerprint-ordered vs byte-ordered trees");
  const std::array<EngineKind, 4> engines = {EngineKind::kKsm, EngineKind::kWpf,
                                             EngineKind::kVUsion, EngineKind::kVUsionThp};
  std::vector<RunResult> results;
  std::printf("%-12s %-14s %12s %10s %14s %10s\n", "engine", "mode", "scanned", "wall(s)",
              "pages/s", "e2e(s)");
  for (const EngineKind kind : engines) {
    for (const bool byte_ordered : {true, false}) {
      RunResult r = RunOne(kind, byte_ordered);
      std::printf("%-12s %-14s %12llu %10.3f %14.0f %10.3f\n", r.engine.c_str(),
                  r.mode.c_str(), static_cast<unsigned long long>(r.pages_scanned),
                  r.wall_seconds, r.pages_per_second, r.end_to_end_seconds);
      results.push_back(std::move(r));
    }
  }

  std::FILE* json = std::fopen("BENCH_host_throughput.json", "w");
  if (json != nullptr) {
    std::fprintf(json, "{\n  \"scenario\": {\"vms\": %zu, \"guest_pages\": %zu, "
                       "\"sim_seconds\": %llu},\n  \"runs\": [\n",
                 kVms, kGuestPages, static_cast<unsigned long long>(kRunTime / kSecond));
    for (std::size_t i = 0; i < results.size(); ++i) {
      const RunResult& r = results[i];
      std::fprintf(json,
                   "    {\"engine\": \"%s\", \"mode\": \"%s\", \"pages_scanned\": %llu, "
                   "\"merges\": %llu, \"frames_saved\": %llu, \"wall_seconds\": %.4f, "
                   "\"pages_per_second\": %.1f, \"end_to_end_seconds\": %.4f}%s\n",
                   r.engine.c_str(), r.mode.c_str(),
                   static_cast<unsigned long long>(r.pages_scanned),
                   static_cast<unsigned long long>(r.merges),
                   static_cast<unsigned long long>(r.frames_saved), r.wall_seconds,
                   r.pages_per_second, r.end_to_end_seconds,
                   i + 1 < results.size() ? "," : "");
    }
    std::fprintf(json, "  ],\n  \"speedup\": {\n");
  }
  std::printf("\nscan-throughput speedup (fingerprint / byte-ordered):\n");
  double ksm_speedup = 0.0;
  for (std::size_t i = 0; i + 1 < results.size(); i += 2) {
    const RunResult& bytes = results[i];
    const RunResult& hashed = results[i + 1];
    const double speedup =
        bytes.pages_per_second > 0 ? hashed.pages_per_second / bytes.pages_per_second : 0.0;
    if (bytes.engine == "KSM") {
      ksm_speedup = speedup;
    }
    std::printf("  %-12s %.2fx\n", bytes.engine.c_str(), speedup);
    if (json != nullptr) {
      std::fprintf(json, "    \"%s\": %.3f%s\n", bytes.engine.c_str(), speedup,
                   i + 3 < results.size() ? "," : "");
    }
  }
  // KSM is the headline: its scan path is pure tree matching. VUsion's scan cost
  // is dominated by per-round re-randomization (a security feature, identical in
  // both modes), so its ratio stays near 1 by design.
  std::printf("\nheadline: KSM diverse-VM scan-throughput speedup %.2fx (target >= 5x)\n",
              ksm_speedup);
  if (json != nullptr) {
    std::fprintf(json, "  },\n  \"headline_ksm_speedup\": %.3f,\n  \"target\": 5.0\n}\n",
                 ksm_speedup);
    std::fclose(json);
    std::printf("wrote BENCH_host_throughput.json\n");
  }
}

}  // namespace
}  // namespace vusion

int main() {
  vusion::Run();
  return 0;
}
