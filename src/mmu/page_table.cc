#include "src/mmu/page_table.h"

#include <cassert>

#include "src/chaos/fault_injector.h"

namespace vusion {

PageTable::PageTable(FrameAllocator& allocator, PhysicalMemory& memory)
    : allocator_(&allocator), memory_(&memory) {
  root_ = NewNode(kPageTableLevels - 1);
}

PageTable::~PageTable() {
  if (root_ != nullptr) {
    FreeNode(root_.get());
  }
}

std::unique_ptr<PageTable::Node> PageTable::NewNode(int level) {
  auto node = std::make_unique<Node>();
  node->level = level;
  // Page-table node allocations are the simulator's __GFP_NOFAIL path: the
  // kernel cannot tolerate losing a translation level, so fault injection is
  // suppressed here (the allocation still fails on genuine exhaustion).
  const FaultInjector::ScopedSuppress no_chaos;
  node->frame = allocator_->Allocate();
  assert(node->frame != kInvalidFrame && "out of memory for page tables");
  if (level > 0) {
    node->children.resize(kPtFanout);
  }
  if (level <= 1) {
    node->entries.resize(kPtFanout);
  }
  ++node_count_;
  return node;
}

void PageTable::FreeNode(Node* node) {
  memo_region_ = ~Vpn{0};
  memo_pmd_ = nullptr;
  memo_leaf_ = nullptr;
  for (auto& child : node->children) {
    if (child != nullptr) {
      FreeNode(child.get());
      child.reset();
    }
  }
  allocator_->Free(node->frame);
  --node_count_;
}

Pte* PageTable::ResolveSlow(Vpn vpn, bool create) {
  const Vpn region = vpn >> 9;
  Node* pmd = region == memo_region_ ? memo_pmd_ : nullptr;
  if (pmd == nullptr) {
    pmd = root_.get();
    for (int level = kPageTableLevels - 1; level >= 2; --level) {
      std::unique_ptr<Node>& child = pmd->children[IndexAt(vpn, level)];
      if (child == nullptr) {
        if (!create) {
          return nullptr;
        }
        child = NewNode(level - 1);
      }
      pmd = child.get();
    }
    memo_region_ = region;
    memo_pmd_ = pmd;
  }
  const std::size_t idx = IndexAt(vpn, 1);
  if (pmd->entries[idx].huge()) {
    memo_leaf_ = nullptr;
    return &pmd->entries[idx];
  }
  std::unique_ptr<Node>& leaf = pmd->children[idx];
  if (leaf == nullptr) {
    if (!create) {
      memo_leaf_ = nullptr;
      return nullptr;
    }
    leaf = NewNode(0);
  }
  memo_leaf_ = leaf.get();
  return &leaf->entries[IndexAt(vpn, 0)];
}

const Pte* PageTable::Resolve(Vpn vpn) const {
  const Node* node = root_.get();
  for (int level = kPageTableLevels - 1; level >= 1; --level) {
    const std::size_t idx = IndexAt(vpn, level);
    if (level == 1 && node->entries[idx].huge()) {
      return &node->entries[idx];
    }
    const Node* child = node->children[idx].get();
    if (child == nullptr) {
      return nullptr;
    }
    node = child;
  }
  return &node->entries[IndexAt(vpn, 0)];
}

PageTable::WalkResult PageTable::TimedWalk(Vpn vpn) {
  WalkResult result;
  Node* node = root_.get();
  for (int level = kPageTableLevels - 1; level >= 1; --level) {
    const std::size_t idx = IndexAt(vpn, level);
    result.touched.push_back(EntryAddr(*node, idx));
    if (level == 1 && node->entries[idx].huge()) {
      result.pte = &node->entries[idx];
      return result;
    }
    Node* child = node->children[idx].get();
    if (child == nullptr) {
      return result;  // translation absent; fault with the levels touched so far
    }
    node = child;
  }
  const std::size_t idx = IndexAt(vpn, 0);
  result.touched.push_back(EntryAddr(*node, idx));
  result.pte = &node->entries[idx];
  return result;
}

void PageTable::MapHuge(Vpn vpn, FrameId frame_base, std::uint16_t flags) {
  assert(vpn % kPagesPerHugePage == 0);
  Node* node = root_.get();
  for (int level = kPageTableLevels - 1; level >= 2; --level) {
    std::unique_ptr<Node>& child = node->children[IndexAt(vpn, level)];
    if (child == nullptr) {
      child = NewNode(level - 1);
    }
    node = child.get();
  }
  const std::size_t idx = IndexAt(vpn, 1);
  if (node->children[idx] != nullptr) {
    FreeNode(node->children[idx].get());
    node->children[idx].reset();
  }
  node->entries[idx] = Pte{frame_base, static_cast<std::uint16_t>(flags | kPteHuge)};
}

bool PageTable::SplitHuge(Vpn vpn) {
  const Vpn base = vpn & ~(kPagesPerHugePage - 1);
  Node* node = root_.get();
  for (int level = kPageTableLevels - 1; level >= 2; --level) {
    Node* child = node->children[IndexAt(base, level)].get();
    if (child == nullptr) {
      return false;
    }
    node = child;
  }
  const std::size_t idx = IndexAt(base, 1);
  Pte& pmd = node->entries[idx];
  if (!pmd.huge()) {
    return false;
  }
  auto leaf = NewNode(0);
  const auto small_flags = static_cast<std::uint16_t>(pmd.flags & ~kPteHuge);
  for (std::size_t i = 0; i < kPagesPerHugePage; ++i) {
    leaf->entries[i] = Pte{static_cast<FrameId>(pmd.frame + i), small_flags};
  }
  pmd = Pte{};
  node->children[idx] = std::move(leaf);
  return true;
}

bool PageTable::IsHuge(Vpn vpn) const {
  const Pte* pte = Resolve(vpn);
  return pte != nullptr && pte->huge();
}

namespace {
void CollectNodes(const auto* node, std::vector<FrameId>& out) {
  out.push_back(node->frame);
  for (const auto& child : node->children) {
    if (child != nullptr) {
      CollectNodes(child.get(), out);
    }
  }
}
}  // namespace

void PageTable::CollectNodeFrames(std::vector<FrameId>& out) const {
  CollectNodes(root_.get(), out);
}

void PageTable::ForEachEntry(Vpn start, Vpn end, const std::function<void(Vpn, Pte&)>& fn) {
  ForEachRecursive(root_.get(), 0, start, end, fn);
}

void PageTable::ForEachRecursive(Node* node, Vpn base, Vpn start, Vpn end,
                                 const std::function<void(Vpn, Pte&)>& fn) {
  if (node->level == 0) {
    for (std::size_t i = 0; i < kPtFanout; ++i) {
      const Vpn vpn = base + i;
      if (vpn >= start && vpn < end && node->entries[i].flags != 0) {
        fn(vpn, node->entries[i]);
      }
    }
    return;
  }
  const Vpn span = Vpn{1} << (9 * node->level);
  for (std::size_t i = 0; i < kPtFanout; ++i) {
    const Vpn child_base = base + i * span;
    if (child_base >= end || child_base + span <= start) {
      continue;
    }
    if (node->level == 1 && node->entries[i].flags != 0) {
      fn(child_base, node->entries[i]);
      continue;
    }
    if (node->children[i] != nullptr) {
      ForEachRecursive(node->children[i].get(), child_base, start, end, fn);
    }
  }
}

}  // namespace vusion

#include "src/snapshot/io.h"

#include <functional>

namespace vusion {

void PageTable::SaveState(snapshot::SnapshotWriter& w) const {
  w.U64(node_count_);
  // Recursive structural dump. Entries are sparse by flags != 0: a cleared PTE
  // is behaviourally absent everywhere (Resolve callers gate on flags), so
  // both an uninterrupted run and a restored run serialize it identically.
  std::function<void(const Node&)> save = [&](const Node& node) {
    w.U32(node.frame);
    if (node.level <= 1) {
      std::uint32_t nonzero = 0;
      for (const Pte& e : node.entries) {
        if (e.flags != 0) {
          ++nonzero;
        }
      }
      w.U32(nonzero);
      for (std::size_t i = 0; i < node.entries.size(); ++i) {
        if (node.entries[i].flags != 0) {
          w.U16(static_cast<std::uint16_t>(i));
          w.U32(node.entries[i].frame);
          w.U16(node.entries[i].flags);
        }
      }
    }
    if (node.level >= 1) {
      std::uint32_t present = 0;
      for (const auto& child : node.children) {
        if (child != nullptr) {
          ++present;
        }
      }
      w.U32(present);
      for (std::size_t i = 0; i < node.children.size(); ++i) {
        if (node.children[i] != nullptr) {
          w.U16(static_cast<std::uint16_t>(i));
          save(*node.children[i]);
        }
      }
    }
  };
  save(*root_);
}

void PageTable::RestoreState(snapshot::SnapshotReader& r) {
  const std::uint64_t expected_nodes = r.U64();
  memo_region_ = ~Vpn{0};
  memo_pmd_ = nullptr;
  memo_leaf_ = nullptr;
  // Discard the old tree without FreeNode: the buddy allocator is restored
  // wholesale by the Machine, so returning the old nodes' frames would
  // double-free them; the new tree reuses the *recorded* frames.
  root_.reset();
  node_count_ = 0;
  std::function<std::unique_ptr<Node>(int)> load = [&](int level) -> std::unique_ptr<Node> {
    auto node = std::make_unique<Node>();
    node->level = level;
    node->frame = r.U32();
    if (level > 0) {
      node->children.resize(kPtFanout);
    }
    if (level <= 1) {
      node->entries.resize(kPtFanout);
    }
    ++node_count_;
    if (level <= 1) {
      const std::uint32_t n = r.U32();
      if (n > kPtFanout) {
        throw snapshot::RestoreError("pagetable", "entry count out of range");
      }
      for (std::uint32_t i = 0; i < n; ++i) {
        const std::uint16_t idx = r.U16();
        if (idx >= kPtFanout) {
          throw snapshot::RestoreError("pagetable", "entry index out of range");
        }
        const FrameId frame = r.U32();
        const std::uint16_t flags = r.U16();
        node->entries[idx] = Pte{frame, flags};
      }
    }
    if (level >= 1) {
      const std::uint32_t n = r.U32();
      if (n > kPtFanout) {
        throw snapshot::RestoreError("pagetable", "child count out of range");
      }
      for (std::uint32_t i = 0; i < n; ++i) {
        const std::uint16_t idx = r.U16();
        if (idx >= kPtFanout || node->children[idx] != nullptr) {
          throw snapshot::RestoreError("pagetable", "bad child index");
        }
        node->children[idx] = load(level - 1);
      }
    }
    return node;
  };
  root_ = load(kPageTableLevels - 1);
  if (node_count_ != expected_nodes) {
    throw snapshot::RestoreError("pagetable", "node count mismatch");
  }
}

}  // namespace vusion
