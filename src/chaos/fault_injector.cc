#include "src/chaos/fault_injector.h"

#include <cstdlib>
#include <sstream>

#include "src/sim/metrics.h"

namespace vusion {

thread_local int FaultInjector::ScopedSuppress::depth_ = 0;

namespace {
constexpr std::size_t kSiteCount = static_cast<std::size_t>(FaultSite::kCount);
constexpr const char* kSiteNames[kSiteCount] = {
    "buddy_alloc", "linear_alloc",  "pool_alloc",     "scan_interrupt",
    "merge_abort", "stale_checksum", "spurious_fault", "teardown",
};
}  // namespace

const char* FaultSiteName(FaultSite site) {
  const auto index = static_cast<std::size_t>(site);
  return index < kSiteCount ? kSiteNames[index] : "invalid";
}

FaultSite ParseFaultSite(const std::string& name) {
  for (std::size_t i = 0; i < kSiteCount; ++i) {
    if (name == kSiteNames[i]) {
      return static_cast<FaultSite>(i);
    }
  }
  return FaultSite::kCount;
}

std::string FormatSchedule(const std::vector<FaultRecord>& schedule) {
  std::ostringstream out;
  for (std::size_t i = 0; i < schedule.size(); ++i) {
    if (i != 0) {
      out << ',';
    }
    out << FaultSiteName(schedule[i].site) << '@' << schedule[i].visit;
  }
  return out.str();
}

bool ParseSchedule(const std::string& text, std::vector<FaultRecord>* out) {
  out->clear();
  if (text.empty()) {
    return true;
  }
  std::istringstream in(text);
  std::string token;
  while (std::getline(in, token, ',')) {
    const std::size_t at = token.find('@');
    if (at == std::string::npos) {
      return false;
    }
    const FaultSite site = ParseFaultSite(token.substr(0, at));
    if (site == FaultSite::kCount) {
      return false;
    }
    char* end = nullptr;
    const std::uint64_t visit = std::strtoull(token.c_str() + at + 1, &end, 10);
    if (end == token.c_str() + at + 1 || *end != '\0') {
      return false;
    }
    out->push_back(FaultRecord{site, visit});
  }
  return true;
}

FaultInjector::FaultInjector(const ChaosConfig& config)
    : config_(config), rng_(config.seed ^ 0xc4a0517e5u) {}

FaultInjector::FaultInjector(const ChaosConfig& config,
                             const std::vector<FaultRecord>& schedule)
    : config_(config), explicit_mode_(true), rng_(config.seed ^ 0xc4a0517e5u) {
  for (const FaultRecord& record : schedule) {
    if (record.site != FaultSite::kCount) {
      planned_[static_cast<std::size_t>(record.site)].insert(record.visit);
    }
  }
}

bool FaultInjector::ShouldFail(FaultSite site) {
  if (ScopedSuppress::active()) {
    return false;
  }
  const auto index = static_cast<std::size_t>(site);
  const std::uint64_t visit = visits_[index]++;
  bool fire = false;
  if (explicit_mode_) {
    fire = planned_[index].count(visit) != 0;
  } else {
    const double rate = config_.rates[index];
    // Rate zero means "site disabled": skip the draw entirely so enabling the
    // injector with all-zero rates consumes no randomness anywhere.
    fire = rate > 0.0 && rng_.NextBool(rate);
  }
  if (fire) {
    ++injected_[index];
    schedule_log_.push_back(FaultRecord{site, visit});
  }
  return fire;
}

std::uint64_t FaultInjector::total_injected() const {
  std::uint64_t total = 0;
  for (const std::uint64_t count : injected_) {
    total += count;
  }
  return total;
}

void FaultInjector::ExportMetrics(MetricsRegistry& metrics) const {
  for (std::size_t i = 0; i < kSiteCount; ++i) {
    const auto site = static_cast<FaultSite>(i);
    metrics.GetCounter("chaos.faults_injected", {{"site", FaultSiteName(site)}})
        .Set(injected_[i]);
    metrics.GetCounter("chaos.site_visits", {{"site", FaultSiteName(site)}})
        .Set(visits_[i]);
  }
  metrics.GetCounter("chaos.retries").Set(retries_);
  metrics.GetCounter("chaos.degradations").Set(degradations_);
}

}  // namespace vusion
