file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_deferred_free.dir/bench_ablation_deferred_free.cc.o"
  "CMakeFiles/bench_ablation_deferred_free.dir/bench_ablation_deferred_free.cc.o.d"
  "bench_ablation_deferred_free"
  "bench_ablation_deferred_free.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_deferred_free.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
