#include "src/mmu/tlb.h"

namespace vusion {

Tlb::Tlb(std::size_t capacity) : capacity_(capacity) {}

std::optional<Pte> Tlb::Lookup(Vpn vpn) {
  const auto it = map_.find(vpn);
  if (it == map_.end()) {
    ++misses_;
    return std::nullopt;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second);
  return it->second->pte;
}

void Tlb::Insert(Vpn vpn, const Pte& pte) {
  const auto it = map_.find(vpn);
  if (it != map_.end()) {
    it->second->pte = pte;
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  if (map_.size() >= capacity_) {
    map_.erase(lru_.back().vpn);
    lru_.pop_back();
  }
  lru_.push_front(Entry{vpn, pte});
  map_[vpn] = lru_.begin();
}

void Tlb::Invalidate(Vpn vpn) {
  const auto it = map_.find(vpn);
  if (it != map_.end()) {
    lru_.erase(it->second);
    map_.erase(it);
  }
}

void Tlb::InvalidateRange(Vpn start, Vpn end) {
  for (auto it = lru_.begin(); it != lru_.end();) {
    if (it->vpn >= start && it->vpn < end) {
      map_.erase(it->vpn);
      it = lru_.erase(it);
    } else {
      ++it;
    }
  }
}

void Tlb::Flush() {
  lru_.clear();
  map_.clear();
}

}  // namespace vusion

#include "src/snapshot/io.h"

namespace vusion {

void Tlb::SaveState(snapshot::SnapshotWriter& w) const {
  w.U64(lru_.size());
  for (const Entry& entry : lru_) {  // front (MRU) first
    w.U64(entry.vpn);
    w.U32(entry.pte.frame);
    w.U16(entry.pte.flags);
  }
  w.U64(hits_);
  w.U64(misses_);
}

void Tlb::RestoreState(snapshot::SnapshotReader& r) {
  lru_.clear();
  map_.clear();
  const std::uint64_t n = r.Count(14);
  for (std::uint64_t i = 0; i < n; ++i) {
    Entry entry;
    entry.vpn = r.U64();
    entry.pte.frame = r.U32();
    entry.pte.flags = r.U16();
    lru_.push_back(entry);
    map_[entry.vpn] = std::prev(lru_.end());
  }
  hits_ = r.U64();
  misses_ = r.U64();
}

}  // namespace vusion
