file(REMOVE_RECURSE
  "CMakeFiles/process_lifecycle_test.dir/process_lifecycle_test.cc.o"
  "CMakeFiles/process_lifecycle_test.dir/process_lifecycle_test.cc.o.d"
  "process_lifecycle_test"
  "process_lifecycle_test.pdb"
  "process_lifecycle_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/process_lifecycle_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
