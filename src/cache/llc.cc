#include "src/cache/llc.h"

#include <algorithm>

namespace vusion {

Llc::Llc(const CacheConfig& config)
    : config_(config), lines_per_page_(std::max<std::size_t>(1, kPageSize / config.line_size)) {}

void Llc::AdjustFrameLines(std::uint64_t tag, int delta) {
  const std::size_t frame = FrameOfTag(tag);
  if (frame >= frame_lines_.size()) {
    frame_lines_.resize(frame + 1, 0);
  }
  frame_lines_[frame] = static_cast<std::uint16_t>(frame_lines_[frame] + delta);
}

bool Llc::Access(PhysAddr paddr) {
  if (lines_.empty()) {
    // First fill commits the line array. Machines that never issue timed
    // accesses (common in large fleets) skip the ~3 MB allocation entirely.
    lines_.assign(config_.sets * config_.ways, Line{});
  }
  const std::uint64_t tag = paddr / config_.line_size;
  const std::size_t set = tag % config_.sets;
  Line* base = &lines_[set * config_.ways];
  ++tick_;
  Line* victim = base;
  for (std::size_t w = 0; w < config_.ways; ++w) {
    Line& line = base[w];
    if (line.valid && line.tag == tag) {
      line.lru = tick_;
      ++hits_;
      return true;
    }
    if (!line.valid) {
      victim = &line;
    } else if (victim->valid && line.lru < victim->lru) {
      victim = &line;
    }
  }
  if (victim->valid) {
    AdjustFrameLines(victim->tag, -1);
  }
  victim->valid = true;
  victim->tag = tag;
  victim->lru = tick_;
  AdjustFrameLines(tag, +1);
  ++misses_;
  return false;
}

void Llc::Flush(PhysAddr paddr) {
  if (lines_.empty()) {
    return;  // nothing has ever been cached
  }
  const std::uint64_t tag = paddr / config_.line_size;
  const std::size_t set = tag % config_.sets;
  Line* base = &lines_[set * config_.ways];
  for (std::size_t w = 0; w < config_.ways; ++w) {
    if (base[w].valid && base[w].tag == tag) {
      base[w].valid = false;
      AdjustFrameLines(tag, -1);
      ++line_flushes_;
      return;
    }
  }
}

void Llc::FlushFrame(FrameId frame) {
  // Freed and remapped frames almost never have cached lines; the exact counter
  // makes those calls O(1) and lets the probe sweep stop as soon as it drains.
  if (frame >= frame_lines_.size() || frame_lines_[frame] == 0) {
    return;
  }
  ++frame_flushes_;
  const PhysAddr start = static_cast<PhysAddr>(frame) * kPageSize;
  for (std::size_t off = 0; off < kPageSize; off += config_.line_size) {
    Flush(start + off);
    if (frame_lines_[frame] == 0) {
      return;
    }
  }
}

bool Llc::Contains(PhysAddr paddr) const {
  if (lines_.empty()) {
    return false;
  }
  const std::uint64_t tag = paddr / config_.line_size;
  const std::size_t set = tag % config_.sets;
  const Line* base = &lines_[set * config_.ways];
  for (std::size_t w = 0; w < config_.ways; ++w) {
    if (base[w].valid && base[w].tag == tag) {
      return true;
    }
  }
  return false;
}

bool Llc::ValidateFrameLineCounters() const {
  std::vector<std::uint16_t> recomputed(frame_lines_.size(), 0);
  for (const Line& line : lines_) {
    if (!line.valid) {
      continue;
    }
    const std::size_t frame = FrameOfTag(line.tag);
    if (frame >= recomputed.size()) {
      // A valid line for a frame the incremental counter never saw: impossible
      // unless the accounting broke.
      return false;
    }
    ++recomputed[frame];
  }
  return recomputed == frame_lines_;
}

std::size_t Llc::resident_bytes() const {
  return lines_.capacity() * sizeof(Line) + frame_lines_.capacity() * sizeof(std::uint16_t);
}

std::size_t Llc::ColorOf(FrameId frame) const { return frame % config_.page_colors(); }

std::size_t Llc::SetIndexOf(PhysAddr paddr) const {
  return (paddr / config_.line_size) % config_.sets;
}

}  // namespace vusion

#include "src/snapshot/io.h"

namespace vusion {

void Llc::SaveState(snapshot::SnapshotWriter& w) const {
  std::uint64_t valid = 0;
  for (const Line& line : lines_) {
    valid += line.valid ? 1 : 0;
  }
  w.Bool(!lines_.empty());
  w.U64(valid);
  for (std::size_t i = 0; i < lines_.size(); ++i) {
    if (lines_[i].valid) {
      w.U64(i);
      w.U64(lines_[i].tag);
      w.U64(lines_[i].lru);
    }
  }
  w.U64(tick_);
  w.U64(hits_);
  w.U64(misses_);
  w.U64(line_flushes_);
  w.U64(frame_flushes_);
}

void Llc::RestoreState(snapshot::SnapshotReader& r) {
  lines_.clear();
  frame_lines_.clear();
  const bool committed = r.Bool();
  const std::uint64_t valid = r.Count(24);
  if (committed) {
    lines_.assign(config_.sets * config_.ways, Line{});
  }
  for (std::uint64_t i = 0; i < valid; ++i) {
    const std::uint64_t index = r.U64();
    if (index >= lines_.size()) {
      throw snapshot::RestoreError("cache", "line index out of range");
    }
    Line& line = lines_[index];
    line.valid = true;
    line.tag = r.U64();
    line.lru = r.U64();
    AdjustFrameLines(line.tag, +1);
  }
  tick_ = r.U64();
  hits_ = r.U64();
  misses_ = r.U64();
  line_flushes_ = r.U64();
  frame_flushes_ = r.U64();
}

}  // namespace vusion
