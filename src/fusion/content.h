// Latency-charged content operations and the round-robin scan cursor shared by the
// scanning fusion engines.

#ifndef VUSION_SRC_FUSION_CONTENT_H_
#define VUSION_SRC_FUSION_CONTENT_H_

#include "src/kernel/machine.h"
#include "src/kernel/process.h"

namespace vusion {

// Content hash/compare that accrue the modeled CPU cost to the machine clock.
class ChargedContent {
 public:
  explicit ChargedContent(Machine& machine) : machine_(&machine) {}

  std::uint64_t Hash(FrameId frame) const;
  int Compare(FrameId a, FrameId b) const;
  // One tree descend step's bookkeeping cost (pointer chasing).
  void ChargeTreeStep() const;

 private:
  Machine* machine_;
};

// Iterates (process, vpn) pairs over all mergeable VMAs of all processes, round
// robin, tolerating processes/VMAs registered while scanning. `wrapped` is set when
// the cursor completes a full round over everything (KSM's unstable-tree reset and
// VUsion's round counter key off this).
class ScanCursor {
 public:
  explicit ScanCursor(Machine& machine) : machine_(&machine) {}

  // Returns false if there is no mergeable memory at all.
  bool Next(Process*& process, Vpn& vpn, bool& wrapped);

 private:
  Machine* machine_;
  std::size_t process_idx_ = 0;
  std::size_t vma_idx_ = 0;
  std::uint64_t page_idx_ = 0;
};

}  // namespace vusion

#endif  // VUSION_SRC_FUSION_CONTENT_H_
