file(REMOVE_RECURSE
  "CMakeFiles/frame_audit_test.dir/frame_audit_test.cc.o"
  "CMakeFiles/frame_audit_test.dir/frame_audit_test.cc.o.d"
  "frame_audit_test"
  "frame_audit_test.pdb"
  "frame_audit_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/frame_audit_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
