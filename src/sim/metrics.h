// Unified telemetry registry: named, label-tagged counters, gauges, and latency
// histograms, hung off Machine and bridged from every instrumented layer (fault
// path, fusion engines, caches, DRAM, allocators, khugepaged).
//
// This is the simulator's *third clock* (see DESIGN.md, "Telemetry"): host-side
// observation only. Recording never touches simulated state, charges no latency,
// and draws no randomness, so simulated stats, traces, and timestamps are
// bit-identical whether the registry is enabled or not (metrics_parity_test).
//
// Recording is designed to be cheap when disabled: every handle is a stable
// pointer into the registry and its record operation is a single inline
// enabled-flag check — no lookup, no allocation, no branch beyond the flag.

#ifndef VUSION_SRC_SIM_METRICS_H_
#define VUSION_SRC_SIM_METRICS_H_

#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/sim/json.h"

namespace vusion {

// Label set attached to a metric, e.g. {{"level", "llc"}}. Order is significant
// (it is part of the metric identity and of the rendered key).
using MetricLabels = std::vector<std::pair<std::string, std::string>>;

enum class MetricKind : std::uint8_t { kCounter, kGauge, kHistogram };

const char* MetricKindName(MetricKind kind);

class MetricsRegistry;

// Monotonic event count. Set() exists for bridged counters whose source of truth
// is a component's own counter (the registry mirrors it on harvest).
class Counter {
 public:
  void Add(std::uint64_t n = 1) {
    if (*enabled_) {
      value_ += n;
    }
  }
  void Set(std::uint64_t v) {
    if (*enabled_) {
      value_ = v;
    }
  }
  [[nodiscard]] std::uint64_t value() const { return value_; }

 private:
  friend class MetricsRegistry;
  explicit Counter(const bool* enabled) : enabled_(enabled) {}
  std::uint64_t value_ = 0;
  const bool* enabled_;
};

// Point-in-time level (free frames, pool occupancy, current n).
class Gauge {
 public:
  void Set(double v) {
    if (*enabled_) {
      value_ = v;
    }
  }
  [[nodiscard]] double value() const { return value_; }

 private:
  friend class MetricsRegistry;
  explicit Gauge(const bool* enabled) : enabled_(enabled) {}
  double value_ = 0.0;
  const bool* enabled_;
};

// Cumulative histogram over fixed upper-bound buckets (last bucket is +inf).
// Record() is a linear scan over a handful of bounds — no allocation ever.
class HistogramMetric {
 public:
  void Record(double x) {
    if (!*enabled_) {
      return;
    }
    std::size_t i = 0;
    while (i < bounds_.size() && x > bounds_[i]) {
      ++i;
    }
    ++buckets_[i];
    ++count_;
    sum_ += x;
    if (count_ == 1 || x < min_) {
      min_ = x;
    }
    if (count_ == 1 || x > max_) {
      max_ = x;
    }
  }

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] double min() const { return min_; }
  [[nodiscard]] double max() const { return max_; }
  [[nodiscard]] const std::vector<double>& bounds() const { return bounds_; }
  [[nodiscard]] const std::vector<std::uint64_t>& buckets() const { return buckets_; }

 private:
  friend class MetricsRegistry;
  HistogramMetric(const bool* enabled, std::vector<double> bounds)
      : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1, 0), enabled_(enabled) {}
  std::vector<double> bounds_;
  std::vector<std::uint64_t> buckets_;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  const bool* enabled_;
};

// Default exponential bucket bounds for simulated-nanosecond latencies.
std::vector<double> LatencyBucketsNs();

// An immutable copy of the registry at one instant, with delta arithmetic for
// phase-scoped measurement ("during the scan quantum" = after - before).
struct MetricsSnapshot {
  struct Entry {
    std::string name;
    MetricLabels labels;
    MetricKind kind = MetricKind::kCounter;
    // Counter: value in `count`. Gauge: value in `value`. Histogram: count/sum/
    // min/max plus per-bucket counts.
    std::uint64_t count = 0;
    double value = 0.0;
    double min = 0.0;
    double max = 0.0;
    std::vector<double> bounds;
    std::vector<std::uint64_t> buckets;

    [[nodiscard]] std::string Key() const;  // "name{k=v,k2=v2}"
  };

  std::vector<Entry> entries;

  // Delta since `base`: counters and histogram counts subtract (entries missing
  // from `base` count from zero); gauges and histogram min/max keep the later
  // value. Entries only present in `base` are dropped.
  [[nodiscard]] MetricsSnapshot Since(const MetricsSnapshot& base) const;

  [[nodiscard]] const Entry* Find(const std::string& name,
                                  const MetricLabels& labels = {}) const;
  // Counter value (or histogram count) by name+labels; 0 when absent.
  [[nodiscard]] std::uint64_t CounterValue(const std::string& name,
                                           const MetricLabels& labels = {}) const;
  // Gauge value by name+labels; 0.0 when absent.
  [[nodiscard]] double GaugeValue(const std::string& name,
                                  const MetricLabels& labels = {}) const;

  // Serializes the entry array as compact JSON directly into `out`, reserving
  // the full output capacity up front and appending names/labels in place (no
  // per-entry node tree, no per-label string copies). This is the fleet rollup
  // path: hundreds of per-Machine registries render at artifact-write time.
  void AppendJsonTo(std::string& out) const;
  // Same serialization wrapped as a splice-in-place Json::Raw node.
  [[nodiscard]] Json ToJson() const;
  // Aligned "key  value" lines, one metric per line, zero-valued entries skipped.
  [[nodiscard]] std::string RenderTable() const;
};

namespace snapshot {
class SnapshotWriter;
class SnapshotReader;
}  // namespace snapshot

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Savestates: serializes every registered metric in registration order.
  // Restore re-registers through the find-or-create path — existing handles
  // (the Machine's pre-registered fault counters) stay valid — and then
  // overwrites values, so a restored registry renders byte-identically.
  void SaveState(snapshot::SnapshotWriter& w) const;
  void RestoreState(snapshot::SnapshotReader& r);

  void set_enabled(bool enabled) { enabled_ = enabled; }
  [[nodiscard]] bool enabled() const { return enabled_; }

  // Find-or-create. Handles are stable for the registry's lifetime; calling again
  // with the same name+labels returns the same handle. Histogram bounds are fixed
  // by the first registration.
  Counter& GetCounter(const std::string& name, const MetricLabels& labels = {});
  Gauge& GetGauge(const std::string& name, const MetricLabels& labels = {});
  HistogramMetric& GetHistogram(const std::string& name, const MetricLabels& labels = {},
                                std::vector<double> bounds = LatencyBucketsNs());

  [[nodiscard]] std::size_t size() const { return order_.size(); }

  [[nodiscard]] MetricsSnapshot Snapshot() const;
  [[nodiscard]] Json ToJson() const { return Snapshot().ToJson(); }
  [[nodiscard]] std::string RenderTable() const { return Snapshot().RenderTable(); }

 private:
  struct Slot {
    std::string name;
    MetricLabels labels;
    MetricKind kind;
    std::size_t index;  // into the kind-specific deque
  };

  static std::string SlotKey(const std::string& name, const MetricLabels& labels);

  bool enabled_ = true;
  std::unordered_map<std::string, std::size_t> lookup_;  // SlotKey -> order_ index
  std::vector<Slot> order_;                              // registration order
  std::deque<Counter> counters_;  // deque: stable addresses for handles
  std::deque<Gauge> gauges_;
  std::deque<HistogramMetric> histograms_;
};

}  // namespace vusion

#endif  // VUSION_SRC_SIM_METRICS_H_
