// Scenario driver: a machine + fusion engine + booted VMs, with the memory
// accounting the paper's consumption figures plot.

#ifndef VUSION_SRC_WORKLOAD_SCENARIO_H_
#define VUSION_SRC_WORKLOAD_SCENARIO_H_

#include <memory>

#include "src/fusion/engine_factory.h"
#include "src/kernel/khugepaged.h"
#include "src/sim/json.h"
#include "src/workload/vm_image.h"

namespace vusion {

struct ScenarioConfig {
  MachineConfig machine;
  FusionConfig fusion;
  EngineKind engine = EngineKind::kKsm;
  bool enable_khugepaged = false;
  KhugepagedConfig khugepaged;
};

// Self-describing config summary for machine-readable bench artifacts.
Json Describe(const ScenarioConfig& config);
Json Describe(const VmImageSpec& spec);

class Scenario {
 public:
  explicit Scenario(const ScenarioConfig& config);
  ~Scenario();

  [[nodiscard]] Machine& machine() { return *machine_; }
  [[nodiscard]] FusionEngine* engine() { return engine_.get(); }
  [[nodiscard]] const ScenarioConfig& config() const { return config_; }

  Process& BootVm(const VmImageSpec& spec, std::uint64_t instance_seed);
  // Boots from a precomputed (possibly fleet-shared) template; bit-identical to
  // BootVm(tmpl.spec, instance_seed) when the template was computed with that seed.
  Process& BootVm(const VmImageTemplate& tmpl);

  // Advances simulated time (daemons run at their deadlines).
  void RunFor(SimTime duration) { machine_->Idle(duration); }

  // Physical frames consumed by guests: allocated minus the engine's reserve pool.
  [[nodiscard]] std::uint64_t consumed_frames() const;
  [[nodiscard]] double consumed_mb() const;

  // Harvests machine components plus the engine's FusionStats into the machine's
  // registry and returns the combined snapshot (host-side observation only).
  MetricsSnapshot CollectMetrics();

 private:
  // khugepaged is enabled before the engine installs so daemon scheduling order
  // (and thus the simulation) is unchanged from the pre-ScopedEngine code.
  static ScopedEngine MakeScenarioEngine(Machine& machine, const ScenarioConfig& config);

  ScenarioConfig config_;
  std::unique_ptr<Machine> machine_;
  ScopedEngine engine_;
};

}  // namespace vusion

#endif  // VUSION_SRC_WORKLOAD_SCENARIO_H_
