#include "src/host/thread_pool.h"

#include <algorithm>

namespace vusion::host {

ThreadPool::ThreadPool(std::size_t threads) {
  const std::size_t spawn = threads > 1 ? threads - 1 : 0;
  workers_.reserve(spawn);
  for (std::size_t i = 0; i < spawn; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::ParallelFor(std::size_t count, std::size_t grain,
                             const std::function<void(std::size_t, std::size_t)>& body) {
  if (count == 0) {
    return;
  }
  if (grain == 0) {
    // A few chunks per thread so dynamic dispatch can balance uneven chunk costs.
    grain = std::max<std::size_t>(1, count / (thread_count() * 4));
  }
  if (workers_.empty() || count <= grain) {
    body(0, count);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    body_ = &body;
    next_ = 0;
    end_ = count;
    grain_ = grain;
    first_error_ = nullptr;
  }
  work_ready_.notify_all();
  DrainChunks();
  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lock(mu_);
    batch_done_.wait(lock, [this] { return next_ >= end_ && in_flight_ == 0; });
    body_ = nullptr;
    error = first_error_;
    first_error_ = nullptr;
  }
  if (error) {
    std::rethrow_exception(error);
  }
}

void ThreadPool::DrainChunks() {
  for (;;) {
    std::size_t begin = 0;
    std::size_t end = 0;
    const std::function<void(std::size_t, std::size_t)>* body = nullptr;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (next_ >= end_) {
        return;
      }
      begin = next_;
      end = std::min(end_, begin + grain_);
      next_ = end;
      ++in_flight_;
      body = body_;
    }
    try {
      (*body)(begin, end);
    } catch (...) {
      std::lock_guard<std::mutex> lock(mu_);
      if (!first_error_) {
        first_error_ = std::current_exception();
      }
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      --in_flight_;
      if (next_ >= end_ && in_flight_ == 0) {
        batch_done_.notify_all();
      }
    }
  }
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_ready_.wait(lock,
                       [this] { return shutdown_ || (body_ != nullptr && next_ < end_); });
      if (shutdown_) {
        return;
      }
    }
    DrainChunks();
  }
}

}  // namespace vusion::host
