file(REMOVE_RECURSE
  "CMakeFiles/thp_tuning.dir/thp_tuning.cc.o"
  "CMakeFiles/thp_tuning.dir/thp_tuning.cc.o.d"
  "thp_tuning"
  "thp_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/thp_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
