file(REMOVE_RECURSE
  "CMakeFiles/vusion_phys.dir/phys/buddy_allocator.cc.o"
  "CMakeFiles/vusion_phys.dir/phys/buddy_allocator.cc.o.d"
  "CMakeFiles/vusion_phys.dir/phys/linear_allocator.cc.o"
  "CMakeFiles/vusion_phys.dir/phys/linear_allocator.cc.o.d"
  "CMakeFiles/vusion_phys.dir/phys/physical_memory.cc.o"
  "CMakeFiles/vusion_phys.dir/phys/physical_memory.cc.o.d"
  "CMakeFiles/vusion_phys.dir/phys/randomized_pool.cc.o"
  "CMakeFiles/vusion_phys.dir/phys/randomized_pool.cc.o.d"
  "libvusion_phys.a"
  "libvusion_phys.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vusion_phys.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
