// Figure 10: total memory consumption of four idle same-image VMs booted 20 s
// apart (paper: 5 minutes apart). Expected shape: KSM and VUsion converge to
// nearly the same consumption; VUsion visibly lags by about one scan round.

#include <cstdio>
#include <vector>

#include "src/sim/stats.h"
#include "bench/bench_common.h"

namespace vusion {
namespace {

constexpr SimTime kStagger = 20 * kSecond;
constexpr SimTime kSample = 5 * kSecond;
constexpr SimTime kTotal = 260 * kSecond;

std::vector<double> RunSeries(EngineKind kind, bench::Reporter& reporter) {
  Scenario scenario(EvalScenario(kind));
  std::vector<double> series;
  std::size_t booted = 0;
  SimTime next_boot = 0;
  for (SimTime t = 0; t <= kTotal; t += kSample) {
    while (booted < 4 && t >= next_boot) {
      scenario.BootVm(EvalImage(), 30 + booted);
      ++booted;
      next_boot += kStagger;
    }
    scenario.RunFor(kSample);
    series.push_back(scenario.consumed_mb());
  }
  reporter.AddMetrics(EngineKindName(kind), scenario.CollectMetrics());
  return series;
}

void Run() {
  bench::Reporter reporter("fig10_idle_vms");
  reporter.Header("Figure 10: memory consumption of 4 idle VMs (MB)");
  DescribeEval(reporter, EngineKind::kVUsion);
  std::vector<std::vector<double>> all;
  for (const EngineKind kind : EvalEngines()) {
    all.push_back(RunSeries(kind, reporter));
    reporter.AddSeries(EngineKindName(kind), all.back());
  }
  std::printf("%-8s %-10s %-10s %-10s %-12s\n", "t(s)", "no-dedup", "KSM", "VUsion",
              "VUsion-THP");
  for (std::size_t i = 0; i < all[0].size(); ++i) {
    std::printf("%-8llu %-10.1f %-10.1f %-10.1f %-12.1f\n",
                static_cast<unsigned long long>(i * (kSample / kSecond)), all[0][i], all[1][i],
                all[2][i], all[3][i]);
  }
  std::printf("\n%s", RenderSeries({"no-dedup", "KSM", "VUsion", "VUsion-THP"}, all).c_str());
  std::printf("\nfinal MB: no-dedup=%.1f KSM=%.1f VUsion=%.1f VUsion-THP=%.1f\n",
              all[0].back(), all[1].back(), all[2].back(), all[3].back());
  std::printf("paper: VUsion converges to KSM's consumption, one scan round later\n");
  for (std::size_t e = 0; e < EvalEngines().size(); ++e) {
    reporter.AddRow("final_mb", {{"system", EngineKindName(EvalEngines()[e])},
                                 {"consumed_mb", all[e].back()}});
  }
  reporter.Note("paper: VUsion converges to KSM's consumption, one scan round later");
}

}  // namespace
}  // namespace vusion

int main() {
  vusion::Run();
  return 0;
}
