// CAIN (paper §4.1, Barresi et al., WOOT'15): brute-forcing ASLR across VMs. The
// victim holds a page that is entirely known except for a randomized pointer; the
// attacker sprays one guess page per candidate pointer value and, after a fusion
// pass, times a write to each guess. The copy-on-write outlier reveals which
// candidate the victim actually holds - recovering the randomized bits. Under
// VUsion every guess costs the same copy-on-access, so the argmax is noise.

#ifndef VUSION_SRC_ATTACK_CAIN_ATTACK_H_
#define VUSION_SRC_ATTACK_CAIN_ATTACK_H_

#include "src/attack/timing_probe.h"

namespace vusion {

class CainAttack {
 public:
  // Tries to recover `entropy_bits` of a randomized pointer (2^bits guess pages).
  // success = the recovered value equals the victim's secret AND the timing signal
  // was decisive.
  static AttackOutcome Run(EngineKind kind, std::uint64_t seed, int entropy_bits = 6);
};

}  // namespace vusion

#endif  // VUSION_SRC_ATTACK_CAIN_ATTACK_H_
