# Empty compiler generated dependencies file for bench_table6_kv_throughput.
# This may be replaced when dependencies are built.
