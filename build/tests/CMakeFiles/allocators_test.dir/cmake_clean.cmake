file(REMOVE_RECURSE
  "CMakeFiles/allocators_test.dir/allocators_test.cc.o"
  "CMakeFiles/allocators_test.dir/allocators_test.cc.o.d"
  "allocators_test"
  "allocators_test.pdb"
  "allocators_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/allocators_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
