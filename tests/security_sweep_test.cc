// Parameterized security sweeps: the Same Behaviour and Randomized Allocation
// guarantees must hold across configurations - pool sizes, scan rates, timing-noise
// levels, and seeds - not just at the defaults the headline benches use.

#include <gtest/gtest.h>

#include "src/attack/cow_side_channel.h"
#include "src/sim/ks_test.h"

namespace vusion {
namespace {

struct SweepParam {
  std::size_t pool_frames;
  double noise_sigma;
  std::uint64_t seed;
};

class SbSweepTest : public ::testing::TestWithParam<SweepParam> {};

TEST_P(SbSweepTest, MergedAndUnmergedTimingsIndistinguishable) {
  const SweepParam param = GetParam();
  MachineConfig machine_config = AttackMachineConfig();
  machine_config.latency.noise_sigma = param.noise_sigma;
  FusionConfig fusion_config = AttackFusionConfig();
  fusion_config.pool_frames = param.pool_frames;
  AttackEnvironment env(EngineKind::kVUsion, param.seed, machine_config, fusion_config);
  const CowSideChannel::Samples samples =
      CowSideChannel::Collect(env, /*pages_per_class=*/200, /*use_reads=*/true);
  const KsResult ks = KsTwoSample(samples.hit_times, samples.miss_times);
  EXPECT_GT(ks.p_value, 0.01) << "SB violated: D=" << ks.statistic
                              << " pool=" << param.pool_frames
                              << " sigma=" << param.noise_sigma;
}

INSTANTIATE_TEST_SUITE_P(
    Configs, SbSweepTest,
    ::testing::Values(SweepParam{256, 0.04, 1}, SweepParam{1024, 0.04, 1},
                      SweepParam{4096, 0.04, 1}, SweepParam{2048, 0.0, 1},
                      SweepParam{2048, 0.10, 1}, SweepParam{2048, 0.04, 2},
                      SweepParam{2048, 0.04, 3}));

class KsmChannelSweepTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(KsmChannelSweepTest, CowChannelPresentAcrossSeeds) {
  // The control side of the sweep: the channel must be detectable on KSM for every
  // seed, or the SB assertions above would be vacuous.
  AttackEnvironment env(EngineKind::kKsm, GetParam(), AttackMachineConfig(),
                        AttackFusionConfig());
  const CowSideChannel::Samples samples =
      CowSideChannel::Collect(env, /*pages_per_class=*/200, /*use_reads=*/false);
  const KsResult ks = KsTwoSample(samples.hit_times, samples.miss_times);
  EXPECT_LT(ks.p_value, 1e-6);
  EXPECT_GT(ks.statistic, 0.5);
}

INSTANTIATE_TEST_SUITE_P(Seeds, KsmChannelSweepTest, ::testing::Values(1, 2, 3, 4));

class RaSweepTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RaSweepTest, SlotDrawsUniformAcrossSeeds) {
  MachineConfig machine_config = AttackMachineConfig();
  machine_config.seed = GetParam();
  FusionConfig fusion_config = AttackFusionConfig();
  AttackEnvironment env(EngineKind::kVUsion, GetParam(), machine_config, fusion_config);
  env.engine()->stats().log_allocations = true;
  Process& p = env.attacker();
  const VirtAddr base = p.AllocateRegion(512, PageType::kAnonymous, true, false);
  Rng rng(GetParam() * 3 + 1);
  for (int i = 0; i < 512; ++i) {
    p.SetupMapPattern(VaddrToVpn(base) + i, rng.Next());
  }
  env.WaitFusionRounds(8);
  const auto& slots = env.engine()->stats().slot_log;
  ASSERT_GT(slots.size(), 500u);
  const KsResult ks = KsUniform(slots, 0.0, 1.0);
  EXPECT_GT(ks.p_value, 0.01) << "RA violated: D=" << ks.statistic;
}

INSTANTIATE_TEST_SUITE_P(Seeds, RaSweepTest, ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace vusion
