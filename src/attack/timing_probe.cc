#include "src/attack/timing_probe.h"

#include "src/sim/ks_test.h"

namespace vusion {

bool TimingDistinguishable(const std::vector<double>& a, const std::vector<double>& b,
                           double* p_value_out) {
  const KsResult result = KsTwoSample(a, b);
  if (p_value_out != nullptr) {
    *p_value_out = result.p_value;
  }
  // Require both statistical significance and a large effect: a side channel an
  // attacker can actually use separates the distributions decisively.
  return result.p_value < 1e-3 && result.statistic > 0.25;
}

MachineConfig AttackMachineConfig() {
  MachineConfig config;
  config.frame_count = 1u << 14;  // 64 MB: fast, still >> pool + working sets
  config.dram.hammer_threshold = 2000;  // scaled so hammer loops stay cheap
  config.dram.vulnerable_row_fraction = 0.5;
  return config;
}

FusionConfig AttackFusionConfig() {
  FusionConfig config;
  config.wake_period = 1 * kMillisecond;
  config.pages_per_wake = 512;
  config.pool_frames = 2048;  // 8 MB pool on the 64 MB attack machine
  config.wpf_period = 50 * kMillisecond;
  return config;
}

AttackEnvironment::AttackEnvironment(EngineKind kind, std::uint64_t seed,
                                     MachineConfig machine_config,
                                     FusionConfig fusion_config)
    : kind_(kind) {
  machine_config.seed = seed;
  machine_ = std::make_unique<Machine>(machine_config);
  // The attacker is process 0: fusion engines scan it first, which is what lets
  // classic Flip Feng Shui steer KSM into keeping the attacker's frame.
  attacker_ = &machine_->CreateProcess();
  victim_ = &machine_->CreateProcess();
  engine_.emplace(kind, *machine_, std::move(fusion_config));
}

AttackEnvironment::~AttackEnvironment() = default;

void AttackEnvironment::WaitFusionRounds(std::uint64_t rounds) {
  FusionEngine* engine = engine_->get();
  if (engine == nullptr) {
    machine_->Idle(10 * kMillisecond);
    return;
  }
  const std::uint64_t target = engine->stats().full_scans + rounds;
  // Bounded wait: enough wake-ups to cover `rounds` full sweeps of all mergeable
  // memory at the configured scan rate.
  for (int i = 0; i < 2'000'000 && engine->stats().full_scans < target; ++i) {
    machine_->Idle(engine->config().wake_period);
  }
}

}  // namespace vusion
