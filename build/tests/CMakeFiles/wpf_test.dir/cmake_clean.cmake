file(REMOVE_RECURSE
  "CMakeFiles/wpf_test.dir/wpf_test.cc.o"
  "CMakeFiles/wpf_test.dir/wpf_test.cc.o.d"
  "wpf_test"
  "wpf_test.pdb"
  "wpf_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wpf_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
