// Host-side microbenchmarks of the simulator's hot primitives (google-benchmark):
// content hashing/compare, the buddy allocator, the content-keyed red-black tree,
// the LLC, and the full timed access path. These bound the wall-clock cost of the
// evaluation benches.

#include <benchmark/benchmark.h>

#include <array>
#include <cstring>
#include <string>
#include <vector>

#include "bench/reporter.h"
#include "src/container/rbtree.h"
#include "src/kernel/process.h"
#include "src/phys/buddy_allocator.h"
#include "src/phys/content_isa.h"

namespace vusion {
namespace {

// --- Per-ISA content primitive tables ---
//
// One row per compiled implementation (scalar / wordwise / avx2) for each hot
// primitive, so regressions in a single kernel are visible in the BENCH json.
// The AVX2 rows are registered only when the table is genuinely distinct from
// the wordwise fallback.

alignas(32) std::array<std::uint8_t, kPageSize> g_page_a;
alignas(32) std::array<std::uint8_t, kPageSize> g_page_b;

void FillBenchPages() {
  ExpandPattern(0xbe9c0de, g_page_a.data());
  std::memcpy(g_page_b.data(), g_page_a.data(), kPageSize);
}

void BM_IsaHashPage(benchmark::State& state, const ContentOps* ops) {
  FillBenchPages();
  for (auto _ : state) {
    benchmark::DoNotOptimize(ops->hash_page(g_page_a.data()));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * kPageSize);
}

void BM_IsaComparePagesEqual(benchmark::State& state, const ContentOps* ops) {
  FillBenchPages();
  for (auto _ : state) {
    benchmark::DoNotOptimize(ops->compare_pages(g_page_a.data(), g_page_b.data()));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * kPageSize);
}

void BM_IsaComparePagesLastByteDiff(benchmark::State& state, const ContentOps* ops) {
  FillBenchPages();
  g_page_b[kPageSize - 1] ^= 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ops->compare_pages(g_page_a.data(), g_page_b.data()));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * kPageSize);
}

void BM_IsaIsZero(benchmark::State& state, const ContentOps* ops) {
  std::memset(g_page_a.data(), 0, kPageSize);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ops->is_zero(g_page_a.data()));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * kPageSize);
}

void RegisterIsaBenches() {
  std::vector<const ContentOps*> tables = {&GetContentOps(ContentIsa::kScalar),
                                           &GetContentOps(ContentIsa::kWordwise)};
  const ContentOps& avx2 = GetContentOps(ContentIsa::kAvx2);
  if (avx2.isa == ContentIsa::kAvx2) {
    tables.push_back(&avx2);
  }
  for (const ContentOps* ops : tables) {
    const std::string tag = std::string("<") + ops->name + ">";
    benchmark::RegisterBenchmark(("BM_IsaHashPage" + tag).c_str(), BM_IsaHashPage, ops);
    benchmark::RegisterBenchmark(("BM_IsaComparePagesEqual" + tag).c_str(),
                                 BM_IsaComparePagesEqual, ops);
    benchmark::RegisterBenchmark(("BM_IsaComparePagesLastByteDiff" + tag).c_str(),
                                 BM_IsaComparePagesLastByteDiff, ops);
    benchmark::RegisterBenchmark(("BM_IsaIsZero" + tag).c_str(), BM_IsaIsZero, ops);
  }
}

void BM_PatternHash(benchmark::State& state) {
  PhysicalMemory mem(64);
  std::uint64_t seed = 1;
  for (auto _ : state) {
    mem.FillPattern(0, seed++);
    benchmark::DoNotOptimize(mem.HashContent(0));
  }
}
BENCHMARK(BM_PatternHash);

void BM_CachedHash(benchmark::State& state) {
  PhysicalMemory mem(64);
  mem.FillPattern(0, 7);
  benchmark::DoNotOptimize(mem.HashContent(0));  // warm the cache
  for (auto _ : state) {
    benchmark::DoNotOptimize(mem.HashContent(0));
  }
}
BENCHMARK(BM_CachedHash);

void BM_ContentCompareEqualPatterns(benchmark::State& state) {
  PhysicalMemory mem(64);
  mem.FillPattern(0, 7);
  mem.FillPattern(1, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mem.Compare(0, 1));
  }
}
BENCHMARK(BM_ContentCompareEqualPatterns);

void BM_ContentCompareMaterialized(benchmark::State& state) {
  PhysicalMemory mem(64);
  mem.FillPattern(0, 7);
  mem.FillPattern(1, 7);
  mem.WriteU64(0, 0, mem.ReadU64(0, 0));
  mem.WriteU64(1, 0, mem.ReadU64(1, 0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(mem.Compare(0, 1));
  }
}
BENCHMARK(BM_ContentCompareMaterialized);

void BM_BuddyAllocFree(benchmark::State& state) {
  PhysicalMemory mem(1u << 14);
  BuddyAllocator buddy(mem);
  for (auto _ : state) {
    const FrameId f = buddy.Allocate();
    buddy.Free(f);
  }
}
BENCHMARK(BM_BuddyAllocFree);

struct IntCompare {
  int operator()(const int& a, const int& b) const { return (a > b) - (a < b); }
};

void BM_RbTreeInsertFind(benchmark::State& state) {
  RbTree<int, IntCompare> tree;
  int i = 0;
  for (auto _ : state) {
    tree.Insert(i);
    const int target = i / 2;
    benchmark::DoNotOptimize(
        tree.Find([target](const int& v) { return (target > v) - (target < v); }));
    ++i;
  }
}
BENCHMARK(BM_RbTreeInsertFind);

void BM_LlcAccess(benchmark::State& state) {
  Llc llc(CacheConfig{});
  PhysAddr addr = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(llc.Access(addr));
    addr += 64;
  }
}
BENCHMARK(BM_LlcAccess);

void BM_TimedProcessRead(benchmark::State& state) {
  MachineConfig config;
  config.frame_count = 1u << 14;
  Machine machine(config);
  Process& p = machine.CreateProcess();
  const VirtAddr base = p.AllocateRegion(512, PageType::kAnonymous, false, false);
  for (std::size_t i = 0; i < 512; ++i) {
    p.SetupMapPattern(VaddrToVpn(base) + i, i);
  }
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(p.Read64(base + (i % 512) * kPageSize + (i % 512) * 8));
    ++i;
  }
}
BENCHMARK(BM_TimedProcessRead);

// Mirrors every google-benchmark run into the unified BENCH_*.json artifact while
// leaving the console output exactly what ConsoleReporter prints.
class JsonBridgeReporter : public benchmark::ConsoleReporter {
 public:
  explicit JsonBridgeReporter(bench::Reporter& reporter) : reporter_(reporter) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    ConsoleReporter::ReportRuns(runs);
    for (const Run& run : runs) {
      reporter_.AddRow("benchmarks",
                       {{"name", run.benchmark_name()},
                        {"iterations", static_cast<long long>(run.iterations)},
                        {"real_time_per_iter", run.GetAdjustedRealTime()},
                        {"cpu_time_per_iter", run.GetAdjustedCPUTime()},
                        {"time_unit", benchmark::GetTimeUnitString(run.time_unit)}});
    }
  }

 private:
  bench::Reporter& reporter_;
};

}  // namespace
}  // namespace vusion

int main(int argc, char** argv) {
  vusion::RegisterIsaBenches();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  vusion::bench::Reporter reporter("micro_primitives");
  vusion::JsonBridgeReporter bridge(reporter);
  benchmark::RunSpecifiedBenchmarks(&bridge);
  benchmark::Shutdown();
  return 0;
}
