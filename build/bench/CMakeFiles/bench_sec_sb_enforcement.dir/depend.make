# Empty dependencies file for bench_sec_sb_enforcement.
# This may be replaced when dependencies are built.
