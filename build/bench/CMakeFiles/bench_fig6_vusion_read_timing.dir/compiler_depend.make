# Empty compiler generated dependencies file for bench_fig6_vusion_read_timing.
# This may be replaced when dependencies are built.
