#!/usr/bin/env python3
"""Validate BENCH_*.json artifacts emitted by bench::Reporter.

Checks the schema_version-1 shape without external dependencies:

  {
    "bench": str,
    "schema_version": 1,
    "titles": [str, ...],
    "config": {str: any, ...},
    "tables": {str: [{str: any, ...}, ...], ...},
    "series": {str: [number, ...], ...},
    "metrics": {str: [metric-entry, ...], ...},
    "timings": {str: number, ...},   # always includes wall_ms
    "notes": [str, ...],
  }

where a metric-entry is an object with at least "name" (str) and "kind"
("counter" | "gauge" | "histogram"), plus "labels" (object of str) when the
metric carries labels; histograms
additionally carry "count", "sum", "bounds", and "buckets"
(len(buckets) == len(bounds) + 1).

The fleet artifact (bench == "fleet_throughput") gets extra structural checks:
its fleet_speedup/streaming_speedup/conflict_rate/headlines/footprint tables
must be present and well-formed, and every entry of the fleet metrics rollup
must carry a "machine" label. The host artifact (bench == "host_throughput")
must carry the pipeline-overlap columns in every threads_sweep row
(phase1_cpu/phase1_wall/merge_wall seconds, overlap_efficiency, speculative
conflict counters) plus a well-formed streaming_speedup table.

Usage: check_bench_json.py FILE [FILE...]
Exits non-zero on the first malformed artifact.
"""

import json
import numbers
import sys

TOP_LEVEL_KEYS = [
    "bench",
    "schema_version",
    "titles",
    "config",
    "tables",
    "series",
    "metrics",
    "timings",
    "notes",
]

METRIC_KINDS = {"counter", "gauge", "histogram"}


class SchemaError(Exception):
    pass


def expect(cond, path, message):
    if not cond:
        raise SchemaError(f"{path}: {message}")


def check_metric_entry(entry, path):
    expect(isinstance(entry, dict), path, "metric entry must be an object")
    expect(isinstance(entry.get("name"), str), path, "missing string 'name'")
    labels = entry.get("labels", {})
    expect(isinstance(labels, dict), path, "'labels' must be an object when present")
    for key, value in labels.items():
        expect(isinstance(value, str), f"{path}.labels.{key}", "label values must be strings")
    kind = entry.get("kind")
    expect(kind in METRIC_KINDS, path, f"bad kind {kind!r}")
    if kind == "histogram":
        for field in ("count", "sum", "bounds", "buckets"):
            expect(field in entry, path, f"histogram missing {field!r}")
        bounds, buckets = entry["bounds"], entry["buckets"]
        expect(isinstance(bounds, list) and isinstance(buckets, list), path,
               "bounds/buckets must be lists")
        expect(len(buckets) == len(bounds) + 1, path,
               f"len(buckets)={len(buckets)} != len(bounds)+1={len(bounds) + 1}")
    else:
        expect(isinstance(entry.get("value"), numbers.Number), path,
               "counter/gauge missing numeric 'value'")


def check_artifact(path):
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)
    expect(isinstance(doc, dict), path, "root must be an object")
    for key in TOP_LEVEL_KEYS:
        expect(key in doc, path, f"missing top-level key {key!r}")
    expect(isinstance(doc["bench"], str) and doc["bench"], path, "'bench' must be a non-empty string")
    expect(doc["schema_version"] == 1, path, f"unsupported schema_version {doc['schema_version']!r}")
    expect(isinstance(doc["titles"], list), path, "'titles' must be a list")
    for i, title in enumerate(doc["titles"]):
        expect(isinstance(title, str), f"{path}.titles[{i}]", "must be a string")
    expect(isinstance(doc["config"], dict), path, "'config' must be an object")
    expect(isinstance(doc["tables"], dict), path, "'tables' must be an object")
    for name, rows in doc["tables"].items():
        expect(isinstance(rows, list), f"{path}.tables.{name}", "must be a list of rows")
        for i, row in enumerate(rows):
            expect(isinstance(row, dict), f"{path}.tables.{name}[{i}]", "row must be an object")
    expect(isinstance(doc["series"], dict), path, "'series' must be an object")
    for name, values in doc["series"].items():
        expect(isinstance(values, list), f"{path}.series.{name}", "must be a list")
        for i, v in enumerate(values):
            expect(isinstance(v, numbers.Number) and not isinstance(v, bool),
                   f"{path}.series.{name}[{i}]", "series values must be numbers")
    expect(isinstance(doc["metrics"], dict), path, "'metrics' must be an object")
    for group, entries in doc["metrics"].items():
        expect(isinstance(entries, list), f"{path}.metrics.{group}", "must be a list of entries")
        for i, entry in enumerate(entries):
            check_metric_entry(entry, f"{path}.metrics.{group}[{i}]")
    timings = doc["timings"]
    expect(isinstance(timings, dict), path, "'timings' must be an object")
    expect(isinstance(timings.get("wall_ms"), numbers.Number), path,
           "'timings' must include numeric 'wall_ms'")
    for label, value in timings.items():
        expect(isinstance(value, numbers.Number) and not isinstance(value, bool),
               f"{path}.timings.{label}", "timings must be numbers")
    expect(isinstance(doc["notes"], list), path, "'notes' must be a list")
    for i, note in enumerate(doc["notes"]):
        expect(isinstance(note, str), f"{path}.notes[{i}]", "must be a string")
    if doc["bench"] == "fleet_throughput":
        check_fleet_artifact(doc, path)
    if doc["bench"] == "host_throughput":
        check_host_artifact(doc, path)
    if doc["bench"] == "snapshot_roundtrip":
        check_snapshot_artifact(doc, path)


# Overlap accounting emitted per threads_sweep row by the decoupled streaming
# pipeline (ScanTiming: DESIGN.md §14); overlap_efficiency is the fraction of
# the serial phase-1 + merge span hidden by running them concurrently.
OVERLAP_FIELDS = (
    "phase1_cpu_seconds",
    "phase1_wall_seconds",
    "merge_wall_seconds",
    "overlap_efficiency",
    "speculative_hashes",
    "speculative_stale",
    "streamed_batches",
)


def check_streaming_speedup_table(rows, path, key_field):
    for i, row in enumerate(rows):
        prefix = f"{path}[{i}]"
        expect(isinstance(row.get(key_field), (str, numbers.Number)), prefix,
               f"missing key field {key_field!r}")
        for field in ("threads", "speedup", "speculative_hashes", "speculative_stale"):
            if field in row:
                expect(isinstance(row[field], numbers.Number), prefix,
                       f"{field!r} must be numeric")
        expect(isinstance(row.get("speedup"), numbers.Number), prefix,
               "missing numeric 'speedup'")


def check_host_artifact(doc, path):
    """Host-throughput shape: the streaming pipeline's overlap columns must be
    present and numeric in every thread-sweep row, and the barrier-vs-streaming
    comparison table must exist with a numeric speedup per engine."""
    tables = doc["tables"]
    for name in ("runs", "speedup", "threads_sweep", "streaming_speedup", "headlines"):
        expect(name in tables and tables[name], f"{path}.tables",
               f"host artifact missing table {name!r}")
    for i, row in enumerate(tables["threads_sweep"]):
        prefix = f"{path}.tables.threads_sweep[{i}]"
        for field in OVERLAP_FIELDS:
            expect(isinstance(row.get(field), numbers.Number), prefix,
                   f"missing numeric overlap column {field!r}")
        eff = row["overlap_efficiency"]
        expect(0.0 <= eff <= 1.0, prefix,
               f"overlap_efficiency {eff!r} outside [0, 1]")
        expect(row["speculative_stale"] <= row["speculative_hashes"], prefix,
               "speculative_stale exceeds speculative_hashes")
    check_streaming_speedup_table(tables["streaming_speedup"],
                                  f"{path}.tables.streaming_speedup", "engine")


def check_fleet_artifact(doc, path):
    """Fleet-specific shape: the tables the regression gate diffs must exist,
    and the metrics rollup must be machine-labeled (Fleet::CollectMetrics)."""
    tables = doc["tables"]
    for name in ("runs", "fleet_speedup", "streaming_speedup", "conflict_rate",
                 "headlines", "footprint", "machine_variance"):
        expect(name in tables and tables[name], f"{path}.tables", f"fleet artifact missing table {name!r}")
    for i, row in enumerate(tables["fleet_speedup"]):
        expect(isinstance(row.get("threads"), numbers.Number), f"{path}.tables.fleet_speedup[{i}]",
               "missing numeric 'threads'")
        expect(isinstance(row.get("speedup"), numbers.Number), f"{path}.tables.fleet_speedup[{i}]",
               "missing numeric 'speedup'")
    check_streaming_speedup_table(tables["streaming_speedup"],
                                  f"{path}.tables.streaming_speedup", "threads")
    for i, row in enumerate(tables["conflict_rate"]):
        prefix = f"{path}.tables.conflict_rate[{i}]"
        for field in ("machine", "speculative_hashes", "speculative_stale",
                      "stale_rate", "merges"):
            expect(isinstance(row.get(field), numbers.Number), prefix,
                   f"missing numeric {field!r}")
        expect(0.0 <= row["stale_rate"] <= 1.0, prefix,
               f"stale_rate {row['stale_rate']!r} outside [0, 1]")
    footprint = tables["footprint"][0]
    for field in ("machines", "total_bytes", "mean_machine_bytes", "max_machine_bytes",
                  "template_bytes"):
        expect(isinstance(footprint.get(field), numbers.Number), f"{path}.tables.footprint[0]",
               f"missing numeric {field!r}")
    expect("fleet" in doc["metrics"], f"{path}.metrics", "fleet artifact missing 'fleet' rollup")
    for i, entry in enumerate(doc["metrics"]["fleet"]):
        labels = entry.get("labels", {})
        expect(isinstance(labels.get("machine"), str), f"{path}.metrics.fleet[{i}]",
               "rollup entry missing 'machine' label")


def check_snapshot_artifact(doc, path):
    """Savestate bench shape: one roundtrip row per engine with timing and size
    fields, the idempotence bit set, and a non-empty per-section breakdown."""
    tables = doc["tables"]
    for name in ("roundtrip", "sections"):
        expect(name in tables and tables[name], f"{path}.tables",
               f"snapshot artifact missing table {name!r}")
    for i, row in enumerate(tables["roundtrip"]):
        prefix = f"{path}.tables.roundtrip[{i}]"
        expect(isinstance(row.get("engine"), str), prefix, "missing string 'engine'")
        for field in ("bytes", "save_ms", "restore_ms", "verify_ms"):
            expect(isinstance(row.get(field), numbers.Number), prefix,
                   f"missing numeric {field!r}")
        expect(row.get("bytes", 0) > 0, prefix, "'bytes' must be positive")
        expect(row.get("resave_identical") is True, prefix,
               "restore->resave must be bit-identical")
    for i, row in enumerate(tables["sections"]):
        prefix = f"{path}.tables.sections[{i}]"
        expect(isinstance(row.get("name"), str), prefix, "missing string 'name'")
        expect(isinstance(row.get("bytes"), numbers.Number), prefix,
               "missing numeric 'bytes'")


def main(argv):
    if len(argv) < 2:
        print(__doc__, file=sys.stderr)
        return 2
    for path in argv[1:]:
        try:
            check_artifact(path)
        except (OSError, json.JSONDecodeError, SchemaError) as err:
            print(f"FAIL {path}: {err}", file=sys.stderr)
            return 1
        print(f"ok   {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
