# Empty dependencies file for vusion_attack.
# This may be replaced when dependencies are built.
