// Linux Kernel Same-page Merging model (paper §2.1), including the properties the
// attacks exploit:
//  - the merged copy is backed by one of the sharing parties' frames (Flip Feng
//    Shui's memory-massaging primitive),
//  - unstable-tree pages are not write-protected while stable pages are (a
//    merge-detection channel),
//  - unmerge is a copy-on-write fault measurably slower than a plain write.
//
// With FusionConfig::unmerge_on_any_access the engine becomes the "copy-on-access
// KSM" variant of the paper's Figure 4; with zero_pages_only it fuses only
// zero-content pages (the mitigation the paper shows is insufficient).

#ifndef VUSION_SRC_FUSION_KSM_H_
#define VUSION_SRC_FUSION_KSM_H_

#include <array>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/container/arena.h"
#include "src/container/flat_map.h"
#include "src/container/rbtree.h"
#include "src/fusion/content.h"
#include "src/fusion/delta_scan.h"
#include "src/fusion/fusion_engine.h"

namespace vusion {

class Ksm final : public FusionEngine {
 public:
  Ksm(Machine& machine, const FusionConfig& config);
  ~Ksm() override;

  [[nodiscard]] const char* name() const override;
  [[nodiscard]] std::uint64_t frames_saved() const override { return frames_saved_; }

  // Daemon: scans pages_per_wake pages every wake_period.
  void Run() override;

  [[nodiscard]] const host::ScanTiming* scan_timing() const override { return &timing_; }

  // SharingPolicy.
  bool HandleFault(Process& process, const PageFault& fault) override;
  bool OnUnmap(Process& process, Vpn vpn) override;
  bool AllowCollapse(Process& process, Vpn base) override;
  bool PrepareCollapse(Process& /*process*/, Vpn /*base*/) override { return true; }
  void OnUnregister(Process& process, Vpn start, std::uint64_t pages) override;
  void OnProcessDestroy(Process& process) override;
  bool Owns(const Process& process, Vpn vpn) const override {
    return rmap_.contains(KeyOf(process, vpn));
  }

  [[nodiscard]] std::size_t stable_size() const { return stable_.size(); }
  [[nodiscard]] std::size_t unstable_size() const { return UnstableSize(); }
  [[nodiscard]] const DeltaPassCache& delta_cache() const { return delta_; }

  void ExportMetrics(MetricsRegistry& registry) const override;
  [[nodiscard]] bool ValidateTrees() const {
    return stable_.ValidateInvariants() && unstable_.ValidateInvariants() &&
           ValidateUnstableChains();
  }
  // True if (process, vpn) is currently merged (test helper).
  [[nodiscard]] bool IsMerged(const Process& process, Vpn vpn) const;

  // Machine-wide consistency check: stable tree, rmap, checksum index, and the
  // kernel's refcounts/PTEs must all agree. See src/chaos/invariant_auditor.h.
  void AuditInvariants(AuditContext& ctx) const override;

  // Savestates (DESIGN.md §13).
  [[nodiscard]] bool SupportsSnapshot() const override { return true; }
  void SaveState(snapshot::SnapshotWriter& w) const override;
  void RestoreState(snapshot::SnapshotReader& r) override;

 private:
  struct StableEntry;
  struct StableCompare {
    Ksm* ksm;
    int operator()(StableEntry* const& a, StableEntry* const& b) const;
  };
  // sort_hash is the frame's content hash at insert time and, in fingerprint
  // mode, the conceptual tree key (with the frame id as tie-break). Both keys
  // are immutable, so the conceptual unstable tree's shape is a pure function
  // of the insert sequence — the property that lets fingerprint mode keep the
  // items in flat per-hash chains and still resolve every lookup to exactly the
  // node the reference rb-tree would have returned.
  struct UnstableItem {
    FrameId frame = kInvalidFrame;
    Process* process = nullptr;
    Vpn vpn = 0;
    std::uint64_t sort_hash = 0;
  };
  struct UnstableCompare {
    Ksm* ksm;
    int operator()(const UnstableItem& a, const UnstableItem& b) const;
  };
  using StableTree = RbTree<StableEntry*, StableCompare>;
  using UnstableTree = RbTree<UnstableItem, UnstableCompare>;
  // Checksum-gate maps are keyed by plain vpns — dense per-process runs — so
  // the identity mixer keeps the scan loop's probes on consecutive cache lines.
  using ChecksumMap = FlatMap64<std::uint64_t, IdentityHash>;

  struct StableEntry {
    FrameId frame = kInvalidFrame;
    std::uint32_t refs = 0;
    StableTree::Node* node = nullptr;
    // Content-index chain (see stable_index_): the entry's content hash at
    // stabilize time and the next entry in its equal-hash bucket.
    std::uint64_t index_hash = 0;
    StableEntry* index_next = nullptr;
  };

  // Pass-cache entry kinds (DeltaPassCache::Entry::kind): the first conclusive
  // branch the full scan took for the page. See TryReplay for each kind's
  // validity guards and replayed effects.
  enum DeltaKind : std::uint8_t {
    kDeltaSkip = 1,        // PTE absent / not present / reserved trap
    kDeltaMerged = 2,      // rmap hit: page already merged
    kDeltaForkShared = 3,  // frame refcount > 0: kernel-owned CoW state
    kDeltaNotZero = 4,     // zero_pages_only mode, frame not zero
    kDeltaUnique = 5,      // full flow ended in the checksum-gate/insert tail
  };

  static std::uint64_t KeyOf(const Process& process, Vpn vpn) {
    return (static_cast<std::uint64_t>(process.id()) << 40) ^ vpn;
  }

  void ScanOne(Process& process, Vpn vpn);
  // Replays the memoized conclusion for (process, vpn) if its guards hold;
  // returns false (after dropping the entry) to fall back to the full scan.
  bool TryReplay(Process& process, Vpn vpn);
  void ScanOneFull(Process& process, Vpn vpn);
  // The unstable-tree lookup/match and checksum-gated insert shared verbatim by
  // the full scan and the kDeltaUnique replay (see DESIGN.md §10).
  void UniqueTail(Process& process, Vpn vpn, FrameId frame, std::uint64_t hash,
                  std::uint64_t epoch, bool replay);
  void RecordSimple(std::uint32_t pid, Vpn vpn, std::uint64_t epoch, std::uint8_t kind,
                    FrameId frame, std::uint64_t content_gen);
  void RecordUnique(std::uint32_t pid, Vpn vpn, std::uint64_t epoch, FrameId frame,
                    std::uint64_t hash);

  // --- Unstable-tree facade ---
  //
  // All unstable-tree access goes through these so the conceptual tree — real
  // nodes plus delta-deferred pending inserts — stays consistent with the
  // fingerprint multiset used for the Find fast-out, and so charged descend
  // costs (a function of conceptual size) are identical with delta on or off.
  [[nodiscard]] std::size_t UnstableSize() const {
    return content_.byte_ordered() ? unstable_.size() : unstable_live_;
  }
  struct FpSlot;  // defined with the fingerprint structures below
  // Finds the conceptual unstable item matching (hash, content-of-frame) — the
  // leftmost (hash, frame)-ordered content match, exactly what the old rb-tree
  // Find returned — and removes it, copying it into *out. Returns false if no
  // item matches. Defined inline because the common outcome on a unique page —
  // no live chain for the probe hash — is decided by one (prefetched) slot
  // read; the rarer chain walk and the byte-ordered tree descent stay
  // out of line.
  bool UnstableFindRemove(std::uint64_t hash, FrameId frame, UnstableItem* out) {
    if (content_.byte_ordered()) {
      return UnstableFindRemoveTree(frame, out);
    }
    // No conceptual item was inserted with this hash => nothing can match (the
    // sort_hash key is immutable), so the chain walk is skipped entirely.
    FpSlot* fp = FpFind(hash);
    if (fp == nullptr || fp->stamp != fps_round_ || fp->count == 0) {
      return false;
    }
    return UnstableChainRemove(fp, frame, out);
  }
  bool UnstableFindRemoveTree(FrameId frame, UnstableItem* out);
  bool UnstableChainRemove(FpSlot* fp, FrameId frame, UnstableItem* out);
  // Inline for the same reason as UnstableFindRemove: one steady-state append
  // per unique page, from the already-memoized slot.
  void UnstableInsert(UnstableItem item) {
    if (content_.byte_ordered()) {
      unstable_.Insert(item);
      return;
    }
    if ((fps_used_ + 1) * 2 > fps_slots_.size()) {
      FpGrow();
    }
    // UniqueTail's find already walked this hash's probe chain; resume at its
    // terminal slot (the match, or the empty slot the find stopped on) instead of
    // re-probing from the home index.
    std::size_t i = (fps_memo_idx_ != ~std::size_t{0} && fps_memo_hash_ == item.sort_hash)
                        ? fps_memo_idx_
                        : FpIndex(item.sort_hash);
    while (true) {
      FpSlot& s = fps_slots_[i];
      if (s.stamp == 0) {
        s.hash = item.sort_hash;
        ++fps_used_;
      } else if (s.hash != item.sort_hash) {
        i = (i + 1) & fps_mask_;
        continue;
      }
      if (s.stamp != fps_round_) {
        // First touch this round: the stale chain (indices into a pool cleared at
        // round end) dies with the restamp.
        s.stamp = fps_round_;
        s.count = 0;
        s.head = kNoNode;
        s.tail = kNoNode;
        ++fps_stamped_;
      }
      const auto idx = static_cast<std::uint32_t>(unstable_pool_.size());
      unstable_pool_.push_back(UnstableNode{item, kNoNode});
      if (s.tail == kNoNode) {
        s.head = idx;
      } else {
        unstable_pool_[s.tail].next = idx;
      }
      s.tail = idx;
      ++s.count;
      ++unstable_live_;
      break;
    }
  }

  void UnstableClear();
  [[nodiscard]] bool ValidateUnstableChains() const;
  // Stable-tree content lookup: the hash index in fingerprint mode (until the
  // first shared-frame corruption), the reference tree descent otherwise.
  // Inline so the common unique-page outcome — counting-filter bucket zero,
  // hash provably not indexed — is one array read with no call.
  StableEntry* StableLookup(FrameId frame, std::uint64_t hash) {
    if (!content_.byte_ordered() &&
        machine_->memory().shared_content_mutations() == 0) {
      if (stable_filter_[StableFilterBucket(hash)] == 0) {
        return nullptr;  // filter miss: hash provably not in the index
      }
      return StableIndexLookup(frame, hash);
    }
    return StableTreeLookup(frame);
  }
  StableEntry* StableIndexLookup(FrameId frame, std::uint64_t hash);
  StableEntry* StableTreeLookup(FrameId frame);
  void StableIndexInsert(StableEntry* entry);
  void StableIndexRemove(StableEntry* entry);
  // The pid's checksum-gate map, memoized across the scan loop's consecutive
  // same-process pages so the steady state pays one unordered_map hop per
  // process switch instead of per page.
  ChecksumMap& ChecksumsFor(std::uint32_t pid) {
    if (checksum_memo_ != nullptr && checksum_memo_pid_ == pid) {
      return *checksum_memo_;
    }
    ChecksumMap& map = checksums_[pid];
    checksum_memo_ = &map;
    checksum_memo_pid_ = pid;
    return map;
  }
  // The wake quantum's scan loop: serial reference (scan_threads<=1) or the
  // two-phase parallel pipeline. Both produce bit-identical simulated results.
  void ScanQuantumSerial();
  void ScanQuantumPipelined();
  // Invalidates batch items whose process a phase hook tore down mid-scan.
  void PruneDeadItems();
  // Promotes an unstable match to the stable tree (write-protecting it).
  StableEntry* Stabilize(const UnstableItem& item);
  // Points (process, vpn) at the entry's frame and releases its duplicate.
  void MergeInto(Process& process, Vpn vpn, StableEntry* entry);
  // Splits the huge mapping covering vpn, if any, charging the split cost.
  Pte* EnsureSmallMapping(Process& process, Vpn vpn);
  [[nodiscard]] bool UnstableStillValid(const UnstableItem& item) const;
  void DropRef(StableEntry* entry);
  // Gives (process, vpn) a private writable copy again (break_ksm/break_cow).
  bool BreakCow(Process& process, Vpn vpn, StableEntry* entry, std::uint16_t extra_flags);
  [[nodiscard]] std::uint16_t MergedFlags(std::uint16_t accessed_bit) const;

  ChargedContent content_;
  ScanCursor cursor_;
  host::ParallelScanPipeline pipeline_;
  host::ScanTiming timing_;
  std::vector<host::ScanItem> batch_;
  // Node storage for both trees; declared before them so it outlives their
  // destructors (members are destroyed in reverse declaration order).
  Arena arena_;
  StableTree stable_;
  UnstableTree unstable_;
  // Insert-time hashes of every conceptual unstable item (fingerprint mode
  // only). A probe hash absent here cannot match any node — sort_hash keys are
  // immutable — so UnstableFind skips the descent (and, under delta, skips
  // materializing the tree at all). Stored as a round-stamped open-addressed
  // table (linear probing, fixed-size slots): a slot counts only while its stamp
  // matches fps_round_, so the per-round clear is one round bump and the
  // steady-state insert re-stamps the slot the same hash claimed last round —
  // one cache line touched, nothing allocated. stamp 0 marks a never-used slot
  // (rounds start at 1); old-stamped slots are dead weight that FpGrow()
  // compacts away when they come to dominate the table.
  // A slot also heads this round's chain of items inserted with its hash: the
  // chain (head -> tail through UnstableNode::next, insertion order) IS the
  // fingerprint-mode unstable structure; no rb-tree is materialized at all.
  struct FpSlot {
    std::uint64_t hash = 0;
    std::uint64_t stamp = 0;
    std::uint32_t count = 0;
    std::uint32_t head = kNoNode;
    std::uint32_t tail = kNoNode;
  };
  [[nodiscard]] std::size_t FpIndex(std::uint64_t hash) const {
    return static_cast<std::size_t>(hash ^ (hash >> 32)) & fps_mask_;
  }
  // Probes for the slot claimed by `hash` (any round), memoizing the terminal
  // probe index — the matching slot, or the empty slot an insert of this hash
  // would claim — so UniqueTail's find-then-insert pair walks the probe chain
  // once, not twice.
  [[nodiscard]] FpSlot* FpFind(std::uint64_t hash) {
    if (fps_slots_.empty()) {
      return nullptr;
    }
    std::size_t i = FpIndex(hash);
    while (true) {
      FpSlot& s = fps_slots_[i];
      if (s.stamp == 0 || s.hash == hash) {
        // Chains never cross a never-used slot, so stamp 0 proves absence.
        fps_memo_hash_ = hash;
        fps_memo_idx_ = i;
        return s.stamp == 0 ? nullptr : &s;
      }
      i = (i + 1) & fps_mask_;
    }
  }
  void FpGrow();
  static constexpr std::uint32_t kNoNode = 0xffffffffu;
  // Flat pool backing the per-hash chains. Append-only within a round (removed
  // items are unlinked, their pool entries abandoned), recycled wholesale at
  // round end with capacity retained — the arena discipline for the hottest
  // allocation in the scanner.
  struct UnstableNode {
    UnstableItem item;
    std::uint32_t next = kNoNode;
  };
  std::vector<UnstableNode> unstable_pool_;
  std::size_t unstable_live_ = 0;  // conceptual unstable size (fingerprint mode)
  std::vector<FpSlot> fps_slots_;  // power-of-2; lazily sized on first insert
  std::size_t fps_mask_ = 0;
  std::size_t fps_used_ = 0;  // slots with stamp != 0 (monotonic until FpGrow)
  std::uint64_t fps_round_ = 1;
  std::uint64_t fps_stamped_ = 0;  // distinct hashes stamped this round
  // FpFind's memoized terminal probe index for fps_memo_hash_ (~0 = invalid;
  // dropped whenever FpGrow moves slots). Round bumps keep it valid: they move
  // nothing, and the probe path for a hash is a function of slot layout alone.
  std::size_t fps_memo_idx_ = ~std::size_t{0};
  std::uint64_t fps_memo_hash_ = 0;
  FlatMap64<StableEntry*> rmap_;
  // Content-hash index over the stable tree's entries (head of an intrusive
  // equal-hash chain per bucket). Maintained on every stabilize/drop; consulted
  // by StableLookup only while no shared-frame content mutation has ever
  // occurred — a mutated stable frame invalidates insert-time keys, and the
  // live-keyed tree descent is the reference behavior for that corrupted
  // regime.
  FlatMap64<StableEntry*> stable_index_;
  // Counting filter over stable_index_'s keys. Every unique page's stable
  // lookup is a miss, and a zero bucket proves the probe hash absent without
  // touching the index table at all; sized to stay L1-resident. Bytes saturate
  // sticky at 255 (never decremented back below), which can only cost false
  // positives, never a missed entry.
  static constexpr std::size_t kStableFilterBuckets = 4096;
  [[nodiscard]] std::size_t StableFilterBucket(std::uint64_t hash) const {
    return static_cast<std::size_t>(hash ^ (hash >> 32)) & (kStableFilterBuckets - 1);
  }
  std::array<std::uint8_t, kStableFilterBuckets> stable_filter_{};
  // Volatility gate, indexed per process so teardown drops a dead process's
  // checksums in O(its pages) instead of sweeping every tracked page.
  std::unordered_map<std::uint32_t, ChecksumMap> checksums_;
  // ChecksumsFor memo; mapped references are stable under insertion, so the
  // memo only drops when a pid's map is erased (process unregistration).
  ChecksumMap* checksum_memo_ = nullptr;
  std::uint32_t checksum_memo_pid_ = 0;
  std::uint64_t frames_saved_ = 0;
  // Bumped on every stable-tree membership change; with an unchanged version
  // (and no shared-frame content mutation) a recorded "no stable match" verdict
  // for an unchanged page is still exact, so the replay skips the stable Find.
  std::uint64_t stable_version_ = 0;
  DeltaPassCache delta_;
  bool delta_mode_ = false;
};

}  // namespace vusion

#endif  // VUSION_SRC_FUSION_KSM_H_
