// Deterministic pseudo-random number generation for the simulator.
//
// All randomness in the repository flows through Rng so that every experiment is
// reproducible from a single seed. The generator is xoshiro256++ seeded via
// SplitMix64, which is fast, well distributed, and has no global state.

#ifndef VUSION_SRC_SIM_RNG_H_
#define VUSION_SRC_SIM_RNG_H_

#include <cmath>
#include <cstdint>
#include <numbers>
#include <vector>

namespace vusion {

// xoshiro256++ PRNG. Not cryptographic; used only for simulation decisions.
//
// The generator core and the gaussian/log-normal draws are defined inline: the
// latency model draws noise on every charge, so these sit on the scan loop's
// hot path and the cross-TU call overhead is measurable there.
class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  // Uniform over the full 64-bit range.
  std::uint64_t Next() {
    const std::uint64_t result = Rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform in [0, bound). bound must be > 0. Uses Lemire rejection to avoid bias.
  std::uint64_t NextBelow(std::uint64_t bound);

  // Uniform in [lo, hi] inclusive. Requires lo <= hi.
  std::uint64_t NextInRange(std::uint64_t lo, std::uint64_t hi);

  // Uniform double in [0, 1).
  double NextDouble() { return static_cast<double>(Next() >> 11) * 0x1.0p-53; }

  // True with probability p (clamped to [0,1]).
  bool NextBool(double p);

  // Standard normal via Box-Muller. The transform yields two independent
  // normals per uniform pair; the second is cached and returned by the next
  // call, so consecutive calls alternate between consuming two uniforms and
  // consuming none. Fork() does not inherit the cached spare.
  double NextGaussian() {
    if (has_spare_gaussian_) {
      has_spare_gaussian_ = false;
      return spare_gaussian_;
    }
    // Guard against log(0).
    double u1 = NextDouble();
    while (u1 <= 0.0) {
      u1 = NextDouble();
    }
    const double u2 = NextDouble();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * std::numbers::pi * u2;
    // sin and cos on the same angle compile to one sincos call.
    spare_gaussian_ = r * std::sin(theta);
    has_spare_gaussian_ = true;
    return r * std::cos(theta);
  }

  // Log-normal with the given median and sigma of the underlying normal. Used by the
  // latency model for realistic timing noise.
  double NextLogNormal(double median, double sigma) {
    return median * std::exp(sigma * NextGaussian());
  }

  // Fisher-Yates shuffle of an index vector.
  void Shuffle(std::vector<std::uint32_t>& values);

  // Derives an independent child generator; convenient for giving each subsystem its
  // own stream so call-order changes in one subsystem do not perturb another.
  [[nodiscard]] Rng Fork();

  // Complete generator state for savestates: the xoshiro words plus the cached
  // Box-Muller spare (NextGaussian alternates between consuming two uniforms
  // and consuming none, so the spare is part of the deterministic stream).
  // Serialization goes through this pair instead of friending into internals.
  struct State {
    std::uint64_t s[4] = {0, 0, 0, 0};
    double spare_gaussian = 0.0;
    bool has_spare_gaussian = false;
  };
  [[nodiscard]] State state() const {
    return State{{state_[0], state_[1], state_[2], state_[3]},
                 spare_gaussian_, has_spare_gaussian_};
  }
  void RestoreState(const State& state) {
    for (int i = 0; i < 4; ++i) {
      state_[i] = state.s[i];
    }
    spare_gaussian_ = state.spare_gaussian;
    has_spare_gaussian_ = state.has_spare_gaussian;
  }

 private:
  static std::uint64_t Rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  std::uint64_t state_[4];
  double spare_gaussian_ = 0.0;
  bool has_spare_gaussian_ = false;
};

}  // namespace vusion

#endif  // VUSION_SRC_SIM_RNG_H_
