// Savestate CLI: create, continue, inspect, and verify machine snapshots
// (DESIGN.md §13). The boot command drives a canonical duplicate-heavy
// workload so snapshots have non-trivial fusion state; continue restores a
// snapshot in a fresh process and keeps running — the CI snapshot-smoke job
// byte-compares a straight-through run against a save/restore/continue run.
//
// Usage:
//   tools/savestate boot --engine vusion --seed 11 --steps 300 --out mid.vsnap
//   tools/savestate boot --engine vusion --seed 11 --steps 300 --idle 80 \
//       --out straight.vsnap --stats straight.txt
//   tools/savestate continue --in mid.vsnap --idle 80 --out continued.vsnap \
//       --stats restored.txt
//   tools/savestate inspect --in mid.vsnap
//   tools/savestate verify --in mid.vsnap
//
// Exit status: 0 on success, 1 on restore/verify failure, 2 on usage errors.

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "src/chaos/fuzz_campaign.h"  // engine token parsing
#include "src/kernel/process.h"
#include "src/snapshot/machine_snapshot.h"

namespace {

using vusion::EngineKind;
using vusion::FusionConfig;
using vusion::FusionEngine;
using vusion::kMillisecond;
using vusion::kPageSize;
using vusion::Machine;
using vusion::MachineConfig;
using vusion::MakeEngineExact;
using vusion::Process;
using vusion::Rng;
using vusion::VaddrToVpn;
using vusion::VirtAddr;

struct CliOptions {
  std::string command;
  EngineKind engine = EngineKind::kVUsion;
  std::uint64_t seed = 1;
  std::size_t steps = 300;
  std::uint64_t idle_ms = 0;
  std::size_t threads = 1;
  bool delta = false;
  std::string in_path;
  std::string out_path;
  std::string stats_path;
};

void PrintUsage() {
  std::cerr
      << "usage: savestate <boot|continue|inspect|verify> [options]\n"
         "  boot:     boot the canonical workload, then save\n"
         "    --engine TOK   ksm|wpf|vusion|vusion-thp|ksm-coa|ksm-zero|none\n"
         "    --seed N       machine + workload seed (default 1)\n"
         "    --steps N      workload events before saving (default 300)\n"
         "    --threads N    engine scan threads (default 1)\n"
         "    --delta        enable epoch-based delta scanning\n"
         "    --idle MS      extra idle after the workload (default 0)\n"
         "    --out FILE     write the snapshot here\n"
         "    --stats FILE   write a run-summary report here\n"
         "  continue: restore a snapshot and keep running\n"
         "    --in FILE --idle MS [--out FILE] [--stats FILE]\n"
         "  inspect:  print header, configs, and the section table\n"
         "    --in FILE\n"
         "  verify:   full restore including the invariant audit\n"
         "    --in FILE\n";
}

bool ParseArgs(int argc, char** argv, CliOptions& cli) {
  if (argc < 2) {
    return false;
  }
  cli.command = argv[1];
  auto need_value = [&](int& i) -> const char* {
    if (i + 1 >= argc) {
      std::cerr << "missing value for " << argv[i] << "\n";
      return nullptr;
    }
    return argv[++i];
  };
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    const char* value = nullptr;
    if (arg == "--engine") {
      if ((value = need_value(i)) == nullptr) {
        return false;
      }
      if (!vusion::ParseCampaignEngine(value, cli.engine)) {
        std::cerr << "unknown engine: " << value << "\n";
        return false;
      }
    } else if (arg == "--seed") {
      if ((value = need_value(i)) == nullptr) {
        return false;
      }
      cli.seed = std::strtoull(value, nullptr, 10);
    } else if (arg == "--steps") {
      if ((value = need_value(i)) == nullptr) {
        return false;
      }
      cli.steps = std::strtoull(value, nullptr, 10);
    } else if (arg == "--idle") {
      if ((value = need_value(i)) == nullptr) {
        return false;
      }
      cli.idle_ms = std::strtoull(value, nullptr, 10);
    } else if (arg == "--threads") {
      if ((value = need_value(i)) == nullptr) {
        return false;
      }
      cli.threads = std::strtoull(value, nullptr, 10);
    } else if (arg == "--delta") {
      cli.delta = true;
    } else if (arg == "--in") {
      if ((value = need_value(i)) == nullptr) {
        return false;
      }
      cli.in_path = value;
    } else if (arg == "--out") {
      if ((value = need_value(i)) == nullptr) {
        return false;
      }
      cli.out_path = value;
    } else if (arg == "--stats") {
      if ((value = need_value(i)) == nullptr) {
        return false;
      }
      cli.stats_path = value;
    } else if (arg == "--help" || arg == "-h") {
      PrintUsage();
      std::exit(0);
    } else {
      std::cerr << "unknown option: " << arg << "\n";
      return false;
    }
  }
  return true;
}

bool ReadFile(const std::string& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::cerr << "cannot open " << path << "\n";
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  out = buf.str();
  return true;
}

bool WriteFile(const std::string& path, const std::string& data) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    std::cerr << "cannot write " << path << "\n";
    return false;
  }
  out.write(data.data(), static_cast<std::streamsize>(data.size()));
  return out.good();
}

// Deterministic run summary; the smoke job diffs this byte-for-byte between a
// straight run and a save/restore/continue run.
void WriteStats(const std::string& path, Machine& machine, FusionEngine* engine) {
  std::ostringstream out;
  out << "clock_now: " << machine.clock().now() << "\n";
  out << "total_faults: " << machine.total_faults() << "\n";
  out << "huge_mappings: " << machine.CountHugeMappings() << "\n";
  if (engine != nullptr) {
    out << "engine: " << engine->name() << "\n";
    out << "frames_saved: " << engine->frames_saved() << "\n";
    const auto& stats = engine->stats();
    out << "pages_scanned: " << stats.pages_scanned << "\n";
    out << "merges: " << stats.merges << "\n";
    out << "fake_merges: " << stats.fake_merges << "\n";
    out << "unmerges_cow: " << stats.unmerges_cow << "\n";
    out << "unmerges_coa: " << stats.unmerges_coa << "\n";
    out << "zero_page_merges: " << stats.zero_page_merges << "\n";
    out << "full_scans: " << stats.full_scans << "\n";
  }
  out << "metrics:\n" << machine.CollectMetrics().RenderTable() << "\n";
  if (!WriteFile(path, out.str())) {
    std::exit(1);
  }
}

// The canonical boot workload: duplicate-heavy pattern pages across three
// processes plus a seeded op mix, same shape as the parity tests.
void RunBootWorkload(Machine& machine, std::uint64_t seed, std::size_t steps) {
  constexpr std::size_t kProcesses = 3;
  constexpr std::size_t kPagesPerProcess = 64;
  std::vector<Process*> procs;
  std::vector<VirtAddr> bases;
  for (std::size_t p = 0; p < kProcesses; ++p) {
    Process& proc = machine.CreateProcess();
    procs.push_back(&proc);
    const VirtAddr base = proc.AllocateRegion(kPagesPerProcess,
                                              vusion::PageType::kAnonymous, true, false);
    bases.push_back(base);
    for (std::size_t i = 0; i < kPagesPerProcess; ++i) {
      proc.SetupMapPattern(VaddrToVpn(base) + i, 0x9000 + (i % 16));
    }
  }
  Rng rng(seed * 1000003 + 17);
  for (std::size_t step = 0; step < steps; ++step) {
    const std::size_t p = rng.NextBelow(kProcesses);
    const std::uint64_t page = rng.NextBelow(kPagesPerProcess);
    const VirtAddr addr = bases[p] + page * kPageSize + rng.NextBelow(kPageSize / 8) * 8;
    switch (rng.NextBelow(5)) {
      case 0:
        procs[p]->Write64(addr, rng.Next());
        break;
      case 1:
        (void)procs[p]->Read64(addr);
        break;
      case 2:
        machine.Idle(rng.NextInRange(1, 4) * kMillisecond);
        break;
      case 3:
        procs[p]->Write64(addr, 0);
        break;
      default:
        (void)procs[p]->Read64(bases[p] + page * kPageSize);
        break;
    }
  }
}

int CmdBoot(const CliOptions& cli) {
  MachineConfig machine_config;
  machine_config.frame_count = 1u << 14;
  machine_config.seed = cli.seed;
  Machine machine(machine_config);

  FusionConfig fusion_config;
  fusion_config.wake_period = 1 * kMillisecond;
  fusion_config.pages_per_wake = 256;
  fusion_config.pool_frames = 1024;
  fusion_config.wpf_period = 10 * kMillisecond;
  fusion_config.scan_threads = cli.threads;
  fusion_config.delta_scan = cli.delta;
  std::unique_ptr<FusionEngine> engine =
      MakeEngineExact(cli.engine, machine, fusion_config);
  if (engine != nullptr) {
    engine->Install();
  }

  RunBootWorkload(machine, cli.seed, cli.steps);
  machine.Idle(cli.idle_ms * kMillisecond);

  if (!cli.out_path.empty()) {
    const std::string image =
        vusion::snapshot::SaveSnapshot(machine, engine.get(), cli.engine);
    if (!WriteFile(cli.out_path, image)) {
      return 1;
    }
    std::cout << "saved " << image.size() << " bytes to " << cli.out_path << "\n";
  }
  if (!cli.stats_path.empty()) {
    WriteStats(cli.stats_path, machine, engine.get());
  }
  if (engine != nullptr) {
    engine->Uninstall();
  }
  return 0;
}

int CmdContinue(const CliOptions& cli) {
  std::string image;
  if (cli.in_path.empty() || !ReadFile(cli.in_path, image)) {
    return cli.in_path.empty() ? 2 : 1;
  }
  vusion::snapshot::RestoredMachine restored = vusion::snapshot::RestoreSnapshot(image);
  std::cout << "restored " << vusion::CampaignEngineToken(restored.kind) << " machine ("
            << image.size() << " bytes), clock " << restored.machine->clock().now()
            << "\n";
  restored.machine->Idle(cli.idle_ms * kMillisecond);
  if (!cli.out_path.empty()) {
    const std::string resaved = vusion::snapshot::SaveSnapshot(
        *restored.machine, restored.engine.get(), restored.kind);
    if (!WriteFile(cli.out_path, resaved)) {
      return 1;
    }
    std::cout << "saved " << resaved.size() << " bytes to " << cli.out_path << "\n";
  }
  if (!cli.stats_path.empty()) {
    WriteStats(cli.stats_path, *restored.machine, restored.engine.get());
  }
  return 0;
}

int CmdInspect(const CliOptions& cli) {
  std::string image;
  if (cli.in_path.empty() || !ReadFile(cli.in_path, image)) {
    return cli.in_path.empty() ? 2 : 1;
  }
  const vusion::snapshot::SnapshotInfo info = vusion::snapshot::InspectSnapshot(image);
  std::cout << "version:     " << info.version << "\n";
  std::cout << "bytes:       " << info.total_bytes << "\n";
  std::cout << "engine:      " << vusion::CampaignEngineToken(info.kind) << "\n";
  std::cout << "seed:        " << info.seed << "\n";
  std::cout << "frame_count: " << info.frame_count << "\n";
  std::cout << "sections:\n";
  for (const auto& section : info.sections) {
    std::cout << "  " << section.name;
    for (std::size_t pad = section.name.size(); pad < 12; ++pad) {
      std::cout << ' ';
    }
    std::cout << " offset " << section.offset << "  size " << section.size << "\n";
  }
  return 0;
}

int CmdVerify(const CliOptions& cli) {
  std::string image;
  if (cli.in_path.empty() || !ReadFile(cli.in_path, image)) {
    return cli.in_path.empty() ? 2 : 1;
  }
  const vusion::snapshot::SnapshotInfo info = vusion::snapshot::VerifySnapshot(image);
  std::cout << "ok: " << info.sections.size() << " sections, "
            << vusion::CampaignEngineToken(info.kind)
            << " engine, restore + invariant audit clean\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions cli;
  if (!ParseArgs(argc, argv, cli)) {
    PrintUsage();
    return 2;
  }
  try {
    if (cli.command == "boot") {
      return CmdBoot(cli);
    }
    if (cli.command == "continue") {
      return CmdContinue(cli);
    }
    if (cli.command == "inspect") {
      return CmdInspect(cli);
    }
    if (cli.command == "verify") {
      return CmdVerify(cli);
    }
  } catch (const vusion::snapshot::RestoreError& e) {
    std::cerr << "FAIL [" << e.section() << "]: " << e.what() << "\n";
    return 1;
  }
  std::cerr << "unknown command: " << cli.command << "\n";
  PrintUsage();
  return 2;
}
