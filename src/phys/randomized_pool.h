// VUsion's Randomized Allocation pool (§7.1): a reserve of frames (128 MB in the
// paper, i.e. 32768 frames = 15 bits of entropy) from which every frame backing a
// (fake) merge or unmerge is drawn uniformly at random. Frames freed by fusion enter
// the pool at a random slot, evicting a random resident frame back to the buddy
// allocator, so an attacker's vulnerable template frame is controllably reused with
// probability only 1/pool_size.

#ifndef VUSION_SRC_PHYS_RANDOMIZED_POOL_H_
#define VUSION_SRC_PHYS_RANDOMIZED_POOL_H_

#include <vector>

#include "src/phys/frame_allocator.h"
#include "src/sim/rng.h"

namespace vusion {

class FaultInjector;

namespace snapshot {
class SnapshotWriter;
class SnapshotReader;
}  // namespace snapshot

class RandomizedPool final : public FrameAllocator {
 public:
  // Reserves up to pool_size frames from the buddy allocator (fewer if memory is
  // tight; the effective entropy shrinks accordingly).
  RandomizedPool(FrameAllocator& backing, std::size_t pool_size, Rng rng);
  ~RandomizedPool() override;

  // Savestates: slot contents (order = slot index = what the RNG draws over),
  // draw RNG stream, and the lifetime counters. Restore overwrites the frames
  // the constructor reserved — the Machine restore path rebuilds the buddy
  // allocator wholesale afterwards, so no frames leak.
  void SaveState(snapshot::SnapshotWriter& w) const;
  void RestoreState(snapshot::SnapshotReader& r);

  // Optional chaos hook: injected failures make a draw fail outright (the
  // caller sees a transient OOM and must degrade gracefully).
  void set_fault_injector(FaultInjector* injector) { injector_ = injector; }

  // Draws a uniformly random frame from the pool and refills the slot from the buddy
  // allocator. Falls back to a plain buddy allocation if the pool is empty.
  FrameId Allocate() override;

  // Inserts the frame at a random pool slot, evicting the previous resident to the
  // buddy allocator.
  void Free(FrameId frame) override;

  [[nodiscard]] std::size_t free_count() const override { return backing_->free_count(); }
  [[nodiscard]] std::size_t pool_size() const { return slots_.size(); }
  [[nodiscard]] double entropy_bits() const;
  // The frames currently held in reserve (frame-accounting audits).
  [[nodiscard]] const std::vector<FrameId>& slots() const { return slots_; }

  // Normalized slot index of the most recent Allocate() draw in [0, 1), or a
  // negative value if the last allocation bypassed the pool. The RA security
  // evaluation (§9.1) KS-tests these draws against the uniform distribution.
  [[nodiscard]] double last_slot_fraction() const { return last_slot_fraction_; }

  // Lifetime operation counts (telemetry): random draws served from the pool,
  // slot refills from the backing allocator, allocations that bypassed an empty
  // pool, and frees inserted (evicting a resident back to the backing allocator).
  [[nodiscard]] std::uint64_t draw_count() const { return draw_count_; }
  [[nodiscard]] std::uint64_t refill_count() const { return refill_count_; }
  [[nodiscard]] std::uint64_t bypass_count() const { return bypass_count_; }
  [[nodiscard]] std::uint64_t insert_count() const { return insert_count_; }

 private:
  FrameAllocator* backing_;
  FaultInjector* injector_ = nullptr;
  Rng rng_;
  std::vector<FrameId> slots_;
  double last_slot_fraction_ = -1.0;
  std::uint64_t draw_count_ = 0;
  std::uint64_t refill_count_ = 0;
  std::uint64_t bypass_count_ = 0;
  std::uint64_t insert_count_ = 0;
};

}  // namespace vusion

#endif  // VUSION_SRC_PHYS_RANDOMIZED_POOL_H_
