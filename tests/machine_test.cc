#include "src/kernel/machine.h"

#include <gtest/gtest.h>

#include "src/kernel/process.h"

namespace vusion {
namespace {

MachineConfig SmallMachine() {
  MachineConfig config;
  config.frame_count = 4096;
  return config;
}

TEST(MachineTest, DemandPagingOnFirstTouch) {
  Machine machine(SmallMachine());
  Process& p = machine.CreateProcess();
  const VirtAddr base = p.AllocateRegion(16, PageType::kAnonymous, false, false);
  EXPECT_EQ(p.TranslateFrame(VaddrToVpn(base)), kInvalidFrame);
  EXPECT_EQ(p.Read64(base), 0u);  // demand-zero fill
  EXPECT_NE(p.TranslateFrame(VaddrToVpn(base)), kInvalidFrame);
  EXPECT_EQ(machine.total_faults(), 1u);
  p.Read64(base);  // no further fault
  EXPECT_EQ(machine.total_faults(), 1u);
}

TEST(MachineTest, ReadsBackWrites) {
  Machine machine(SmallMachine());
  Process& p = machine.CreateProcess();
  const VirtAddr base = p.AllocateRegion(4, PageType::kAnonymous, false, false);
  p.Write64(base + 24, 0x1122334455667788ULL);
  EXPECT_EQ(p.Read64(base + 24), 0x1122334455667788ULL);
  EXPECT_EQ(p.Read64(base + 32), 0u);
}

TEST(MachineTest, AccessOutsideVmaThrows) {
  Machine machine(SmallMachine());
  Process& p = machine.CreateProcess();
  EXPECT_THROW(p.Read64(0xdead0000), std::runtime_error);
}

TEST(MachineTest, TimingFaultIsSlowerThanCachedAccess) {
  Machine machine(SmallMachine());
  Process& p = machine.CreateProcess();
  const VirtAddr base = p.AllocateRegion(4, PageType::kAnonymous, false, false);
  const SimTime faulting = p.TimedRead(base);
  const SimTime warm = p.TimedRead(base);
  EXPECT_GT(faulting, warm * 5);  // fault + allocation dominates
}

TEST(MachineTest, CacheMakesSecondAccessFaster) {
  Machine machine(SmallMachine());
  Process& p = machine.CreateProcess();
  const VirtAddr base = p.AllocateRegion(4, PageType::kAnonymous, false, false);
  p.Read64(base);                          // fault + fill
  const SimTime cold = p.TimedRead(base + 512);  // new line: DRAM
  const SimTime hot = p.TimedRead(base + 512);   // cached line
  EXPECT_GT(cold, hot);
}

TEST(MachineTest, AccessedAndDirtyBits) {
  Machine machine(SmallMachine());
  Process& p = machine.CreateProcess();
  const VirtAddr base = p.AllocateRegion(4, PageType::kAnonymous, false, false);
  p.Read64(base);
  const Pte* pte = p.address_space().GetPte(VaddrToVpn(base));
  EXPECT_TRUE(pte->accessed());
  // Clear accessed; a fresh access re-sets it via the TLB-fill path.
  p.address_space().UpdateFlags(VaddrToVpn(base), 0, kPteAccessed);
  EXPECT_FALSE(p.address_space().GetPte(VaddrToVpn(base))->accessed());
  p.Read64(base);
  EXPECT_TRUE(p.address_space().GetPte(VaddrToVpn(base))->accessed());
  // Dirty set on write.
  p.Write64(base, 1);
  EXPECT_TRUE(p.address_space().GetPte(VaddrToVpn(base))->dirty());
}

TEST(MachineTest, PrefetchFillsCacheButNeverFaults) {
  Machine machine(SmallMachine());
  Process& p = machine.CreateProcess();
  const VirtAddr base = p.AllocateRegion(4, PageType::kAnonymous, false, false);
  // Prefetch of an unmapped page: silent, no fault.
  p.Prefetch(base);
  EXPECT_EQ(machine.total_faults(), 0u);
  EXPECT_EQ(p.TranslateFrame(VaddrToVpn(base)), kInvalidFrame);
  // Prefetch of a mapped page fills the LLC.
  p.Read64(base);
  const FrameId frame = p.TranslateFrame(VaddrToVpn(base));
  machine.llc().FlushFrame(frame);
  p.Prefetch(base + 128);
  EXPECT_TRUE(machine.llc().Contains(static_cast<PhysAddr>(frame) * kPageSize + 128));
}

TEST(MachineTest, CacheDisabledPagesNeverEnterLlc) {
  Machine machine(SmallMachine());
  Process& p = machine.CreateProcess();
  const VirtAddr base = p.AllocateRegion(4, PageType::kAnonymous, false, false);
  p.Read64(base);
  const FrameId frame = p.TranslateFrame(VaddrToVpn(base));
  machine.llc().FlushFrame(frame);
  p.address_space().UpdateFlags(VaddrToVpn(base), kPteCacheDisable, 0);
  p.Read64(base + 192);
  p.Prefetch(base + 192);  // the Gruss et al. prefetch attack vector
  EXPECT_FALSE(machine.llc().Contains(static_cast<PhysAddr>(frame) * kPageSize + 192));
}

TEST(MachineTest, FlushCacheLineEvicts) {
  Machine machine(SmallMachine());
  Process& p = machine.CreateProcess();
  const VirtAddr base = p.AllocateRegion(4, PageType::kAnonymous, false, false);
  p.Read64(base);
  const FrameId frame = p.TranslateFrame(VaddrToVpn(base));
  ASSERT_TRUE(machine.llc().Contains(static_cast<PhysAddr>(frame) * kPageSize));
  p.FlushCacheLine(base);
  EXPECT_FALSE(machine.llc().Contains(static_cast<PhysAddr>(frame) * kPageSize));
}

TEST(MachineTest, HugeMappingAccessResolvesSubpageFrame) {
  Machine machine(SmallMachine());
  Process& p = machine.CreateProcess();
  const VirtAddr base = p.AllocateRegion(kPagesPerHugePage, PageType::kAnonymous, false, true);
  ASSERT_TRUE(p.SetupMapHuge(VaddrToVpn(base), 0x8888));
  // Subpage 3 has pattern seed 0x8888+3; its first word must match.
  const std::uint64_t word = p.Read64(base + 3 * kPageSize);
  PhysicalMemory probe(1);
  probe.FillPattern(0, 0x8888 + 3);
  EXPECT_EQ(word, probe.ReadU64(0, 0));
}

TEST(MachineTest, UnmapAndFreeReleasesFrame) {
  Machine machine(SmallMachine());
  Process& p = machine.CreateProcess();
  const VirtAddr base = p.AllocateRegion(4, PageType::kAnonymous, false, false);
  p.SetupMapPattern(VaddrToVpn(base), 1);
  const std::size_t allocated = machine.memory().allocated_count();
  p.SetupUnmap(VaddrToVpn(base));
  EXPECT_EQ(machine.memory().allocated_count(), allocated - 1);
  EXPECT_EQ(p.TranslateFrame(VaddrToVpn(base)), kInvalidFrame);
}


TEST(MachineTest, L1MakesRepeatedLineAccessFastest) {
  MachineConfig config = SmallMachine();
  config.latency.noise_sigma = 0.0;
  Machine machine(config);
  Process& p = machine.CreateProcess();
  const VirtAddr base = p.AllocateRegion(4, PageType::kAnonymous, false, false);
  p.Read64(base);                               // fault + fill
  const SimTime llc_level = p.TimedRead(base + 64);   // L1 miss is also LLC miss: DRAM
  const SimTime l1_level = p.TimedRead(base + 64);    // now in L1
  EXPECT_GT(llc_level, l1_level);
  // With default constants: TLB lookup (1) + L1 hit (4) = 5 ns exactly.
  EXPECT_EQ(l1_level,
            machine.latency().config().l1_hit + machine.latency().config().tlb_lookup);
}

TEST(MachineTest, L1CanBeDisabled) {
  MachineConfig config = SmallMachine();
  config.enable_l1 = false;
  config.latency.noise_sigma = 0.0;
  Machine machine(config);
  EXPECT_EQ(machine.l1(), nullptr);
  Process& p = machine.CreateProcess();
  const VirtAddr base = p.AllocateRegion(4, PageType::kAnonymous, false, false);
  p.Read64(base);
  p.Read64(base + 64);
  const SimTime hot = p.TimedRead(base + 64);  // best case is an LLC hit now
  EXPECT_EQ(hot,
            machine.latency().config().llc_hit + machine.latency().config().tlb_lookup);
}

TEST(MachineTest, FlushFrameEvictsAllLevels) {
  Machine machine(SmallMachine());
  Process& p = machine.CreateProcess();
  const VirtAddr base = p.AllocateRegion(4, PageType::kAnonymous, false, false);
  p.Read64(base);
  const FrameId frame = p.TranslateFrame(VaddrToVpn(base));
  const PhysAddr paddr = static_cast<PhysAddr>(frame) * kPageSize;
  ASSERT_TRUE(machine.l1()->Contains(paddr));
  machine.FlushFrame(frame);
  EXPECT_FALSE(machine.l1()->Contains(paddr));
  EXPECT_FALSE(machine.llc().Contains(paddr));
}

namespace daemon_test {

class CountingDaemon final : public Daemon {
 public:
  explicit CountingDaemon(SimTime period) : period_(period) {}
  [[nodiscard]] SimTime next_run() const override { return next_; }
  void Run() override {
    ++runs;
    next_ += period_;
  }
  int runs = 0;

 private:
  SimTime period_;
  SimTime next_ = 0;
};

}  // namespace daemon_test

TEST(MachineTest, IdleRunsDaemonsAtDeadlines) {
  Machine machine(SmallMachine());
  daemon_test::CountingDaemon daemon(10 * kMillisecond);
  machine.AddDaemon(&daemon);
  machine.Idle(95 * kMillisecond);
  EXPECT_GE(daemon.runs, 9);
  EXPECT_LE(daemon.runs, 11);
  EXPECT_EQ(machine.clock().now(), 95 * kMillisecond);
  machine.RemoveDaemon(&daemon);
  const int runs = daemon.runs;
  machine.Idle(50 * kMillisecond);
  EXPECT_EQ(daemon.runs, runs);
}

TEST(MachineTest, CountHugeMappings) {
  Machine machine(SmallMachine());
  Process& p = machine.CreateProcess();
  const VirtAddr base =
      p.AllocateRegion(2 * kPagesPerHugePage, PageType::kAnonymous, false, true);
  EXPECT_EQ(machine.CountHugeMappings(), 0u);
  ASSERT_TRUE(p.SetupMapHuge(VaddrToVpn(base), 0x1));
  ASSERT_TRUE(p.SetupMapHuge(VaddrToVpn(base) + kPagesPerHugePage, 0x1000));
  EXPECT_EQ(machine.CountHugeMappings(), 2u);
  p.address_space().SplitHuge(VaddrToVpn(base));
  EXPECT_EQ(machine.CountHugeMappings(), 1u);
}

}  // namespace
}  // namespace vusion
