// Linux Kernel Same-page Merging model (paper §2.1), including the properties the
// attacks exploit:
//  - the merged copy is backed by one of the sharing parties' frames (Flip Feng
//    Shui's memory-massaging primitive),
//  - unstable-tree pages are not write-protected while stable pages are (a
//    merge-detection channel),
//  - unmerge is a copy-on-write fault measurably slower than a plain write.
//
// With FusionConfig::unmerge_on_any_access the engine becomes the "copy-on-access
// KSM" variant of the paper's Figure 4; with zero_pages_only it fuses only
// zero-content pages (the mitigation the paper shows is insufficient).

#ifndef VUSION_SRC_FUSION_KSM_H_
#define VUSION_SRC_FUSION_KSM_H_

#include <unordered_map>
#include <vector>

#include "src/container/rbtree.h"
#include "src/fusion/content.h"
#include "src/fusion/fusion_engine.h"

namespace vusion {

class Ksm final : public FusionEngine {
 public:
  Ksm(Machine& machine, const FusionConfig& config);
  ~Ksm() override;

  [[nodiscard]] const char* name() const override;
  [[nodiscard]] std::uint64_t frames_saved() const override { return frames_saved_; }

  // Daemon: scans pages_per_wake pages every wake_period.
  void Run() override;

  [[nodiscard]] const host::ScanTiming* scan_timing() const override { return &timing_; }

  // SharingPolicy.
  bool HandleFault(Process& process, const PageFault& fault) override;
  bool OnUnmap(Process& process, Vpn vpn) override;
  bool AllowCollapse(Process& process, Vpn base) override;
  bool PrepareCollapse(Process& /*process*/, Vpn /*base*/) override { return true; }
  void OnUnregister(Process& process, Vpn start, std::uint64_t pages) override;
  void OnProcessDestroy(Process& process) override;
  bool Owns(const Process& process, Vpn vpn) const override {
    return rmap_.contains(KeyOf(process, vpn));
  }

  [[nodiscard]] std::size_t stable_size() const { return stable_.size(); }
  [[nodiscard]] std::size_t unstable_size() const { return unstable_.size(); }
  [[nodiscard]] bool ValidateTrees() const {
    return stable_.ValidateInvariants() && unstable_.ValidateInvariants();
  }
  // True if (process, vpn) is currently merged (test helper).
  [[nodiscard]] bool IsMerged(const Process& process, Vpn vpn) const;

  // Machine-wide consistency check: stable tree, rmap, checksum index, and the
  // kernel's refcounts/PTEs must all agree. See src/chaos/invariant_auditor.h.
  void AuditInvariants(AuditContext& ctx) const override;

 private:
  struct StableEntry;
  struct StableCompare {
    Ksm* ksm;
    int operator()(StableEntry* const& a, StableEntry* const& b) const;
  };
  struct UnstableItem {
    FrameId frame = kInvalidFrame;
    Process* process = nullptr;
    Vpn vpn = 0;
  };
  struct UnstableCompare {
    Ksm* ksm;
    int operator()(const UnstableItem& a, const UnstableItem& b) const;
  };
  using StableTree = RbTree<StableEntry*, StableCompare>;
  using UnstableTree = RbTree<UnstableItem, UnstableCompare>;

  struct StableEntry {
    FrameId frame = kInvalidFrame;
    std::uint32_t refs = 0;
    StableTree::Node* node = nullptr;
  };

  static std::uint64_t KeyOf(const Process& process, Vpn vpn) {
    return (static_cast<std::uint64_t>(process.id()) << 40) ^ vpn;
  }

  void ScanOne(Process& process, Vpn vpn);
  // The wake quantum's scan loop: serial reference (scan_threads<=1) or the
  // two-phase parallel pipeline. Both produce bit-identical simulated results.
  void ScanQuantumSerial();
  void ScanQuantumPipelined();
  // Invalidates batch items whose process a phase hook tore down mid-scan.
  void PruneDeadItems();
  // Promotes an unstable match to the stable tree (write-protecting it).
  StableEntry* Stabilize(const UnstableItem& item);
  // Points (process, vpn) at the entry's frame and releases its duplicate.
  void MergeInto(Process& process, Vpn vpn, StableEntry* entry);
  // Splits the huge mapping covering vpn, if any, charging the split cost.
  Pte* EnsureSmallMapping(Process& process, Vpn vpn);
  [[nodiscard]] bool UnstableStillValid(const UnstableItem& item) const;
  void DropRef(StableEntry* entry);
  // Gives (process, vpn) a private writable copy again (break_ksm/break_cow).
  bool BreakCow(Process& process, Vpn vpn, StableEntry* entry, std::uint16_t extra_flags);
  [[nodiscard]] std::uint16_t MergedFlags(std::uint16_t accessed_bit) const;

  ChargedContent content_;
  ScanCursor cursor_;
  host::ParallelScanPipeline pipeline_;
  host::ScanTiming timing_;
  std::vector<host::ScanItem> batch_;
  StableTree stable_;
  UnstableTree unstable_;
  std::unordered_map<std::uint64_t, StableEntry*> rmap_;
  // Volatility gate, indexed per process so teardown drops a dead process's
  // checksums in O(its pages) instead of sweeping every tracked page.
  std::unordered_map<std::uint32_t, std::unordered_map<Vpn, std::uint64_t>> checksums_;
  std::uint64_t frames_saved_ = 0;
};

}  // namespace vusion

#endif  // VUSION_SRC_FUSION_KSM_H_
