// Inclusive, physically-indexed set-associative last-level cache simulator.
//
// Default geometry mirrors the paper's testbed (Intel Xeon E3-1240 v5): 8 MB, 16
// ways, 64 B lines, 8192 sets; each 4 KB page covers 64 consecutive sets, giving
// 8192/64 = 128 page colors. The LLC is what makes PRIME+PROBE (page-color attack),
// FLUSH+RELOAD (page-sharing attack), and AnC-style page-walk probing expressible.

#ifndef VUSION_SRC_CACHE_LLC_H_
#define VUSION_SRC_CACHE_LLC_H_

#include <cstdint>
#include <vector>

#include "src/phys/frame.h"
#include "src/sim/latency_model.h"

namespace vusion {

using PhysAddr = std::uint64_t;

struct CacheConfig {
  std::size_t line_size = 64;
  std::size_t ways = 16;
  std::size_t sets = 8192;

  [[nodiscard]] std::size_t size_bytes() const { return line_size * ways * sets; }
  // Number of page colors: sets covered by the whole cache / sets covered by a page.
  [[nodiscard]] std::size_t page_colors() const { return sets / (kPageSize / line_size); }
};

namespace snapshot {
class SnapshotWriter;
class SnapshotReader;
}  // namespace snapshot

class Llc {
 public:
  explicit Llc(const CacheConfig& config);

  // Savestates: valid lines (index/tag/lru) plus the tick and counters; the
  // per-frame line counts are a rebuildable index and are reconstructed.
  void SaveState(snapshot::SnapshotWriter& w) const;
  void RestoreState(snapshot::SnapshotReader& r);

  // Touches the line containing paddr. Returns true on hit. Does not charge
  // latency; the memory hierarchy (Machine) composes cache and DRAM timing.
  bool Access(PhysAddr paddr);

  // clflush: evicts the line containing paddr if present.
  void Flush(PhysAddr paddr);

  // Evicts every line of the frame (used when a frame is freed or remapped
  // cache-disabled, and by attackers flushing a whole page).
  void FlushFrame(FrameId frame);

  [[nodiscard]] bool Contains(PhysAddr paddr) const;

  // Color of a physical frame under this geometry (pfn mod page_colors()).
  [[nodiscard]] std::size_t ColorOf(FrameId frame) const;
  [[nodiscard]] std::size_t SetIndexOf(PhysAddr paddr) const;

  [[nodiscard]] const CacheConfig& config() const { return config_; }
  [[nodiscard]] std::uint64_t hits() const { return hits_; }
  [[nodiscard]] std::uint64_t misses() const { return misses_; }
  // Lines actually evicted by Flush()/FlushFrame() (not no-op flush calls).
  [[nodiscard]] std::uint64_t line_flushes() const { return line_flushes_; }
  [[nodiscard]] std::uint64_t frame_flushes() const { return frame_flushes_; }

  // Recomputes per-frame cached-line counts from the line array and compares
  // against the incremental frame_lines_ counters; false on any mismatch.
  // Audit/test use only (O(sets * ways)).
  [[nodiscard]] bool ValidateFrameLineCounters() const;

  // Host bytes committed to the line array and per-frame counters. The line
  // array is allocated on the first fill, so idle machines in a fleet (booted
  // but not yet issuing timed accesses) carry no cache-model overhead.
  [[nodiscard]] std::size_t resident_bytes() const;

 private:
  struct Line {
    std::uint64_t tag = 0;
    bool valid = false;
    std::uint64_t lru = 0;  // last-touched stamp
  };

  [[nodiscard]] std::size_t FrameOfTag(std::uint64_t tag) const {
    return static_cast<std::size_t>(tag / lines_per_page_);
  }
  // Exact per-frame cached-line accounting, maintained on every fill, eviction,
  // and flush. FlushFrame is called for every freed/remapped frame — the vast
  // majority holding zero cached lines — so the counter turns its
  // lines-per-page × ways probe sweep into an O(1) skip.
  void AdjustFrameLines(std::uint64_t tag, int delta);

  CacheConfig config_;
  std::size_t lines_per_page_;
  // sets * ways, row-major by set; empty until the first fill (an empty array
  // means "nothing cached", so flush/lookup paths short-circuit on it). The
  // default 8 MB geometry costs ~3 MB of host memory per instance — a
  // per-Machine fixed cost a large fleet cannot afford to pay up front.
  std::vector<Line> lines_;
  std::vector<std::uint16_t> frame_lines_;  // cached-line count per frame, grown lazily
  std::uint64_t tick_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t line_flushes_ = 0;
  std::uint64_t frame_flushes_ = 0;
};

}  // namespace vusion

#endif  // VUSION_SRC_CACHE_LLC_H_
