file(REMOVE_RECURSE
  "CMakeFiles/ksm_test.dir/ksm_test.cc.o"
  "CMakeFiles/ksm_test.dir/ksm_test.cc.o.d"
  "ksm_test"
  "ksm_test.pdb"
  "ksm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ksm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
