# Empty dependencies file for bench_ablation_rerandomize.
# This may be replaced when dependencies are built.
