#include "src/fusion/vusion_engine.h"

#include <algorithm>
#include <chrono>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/kernel/idle_tracker.h"
#include "src/snapshot/io.h"

namespace vusion {

int VUsionEngine::StableCompare::operator()(StableEntry* const& a,
                                            StableEntry* const& b) const {
  return engine->content_.HostOrder(a->frame, b->frame);
}

VUsionEngine::VUsionEngine(Machine& machine, const FusionConfig& config)
    : FusionEngine(machine, config),
      content_(machine, config.byte_ordered_trees),
      cursor_(machine),
      pipeline_(machine.memory(), machine.HostPool(config_.scan_threads)),
      stable_(StableCompare{this}),
      pool_(machine.buddy(), config.pool_frames, machine.rng().Fork()),
      deferred_(machine),
      delta_mode_(config.delta_scan) {
  stable_.SetNodeArena(&arena_);
  pipeline_.ConfigureStreaming(config.scan_streaming, config.scan_chunk_pages);
}

VUsionEngine::~VUsionEngine() {
  stable_.InOrder([this](StableEntry* const& e) { arena_.Delete(e); });
}

void VUsionEngine::ExportMetrics(MetricsRegistry& registry) const {
  FusionEngine::ExportMetrics(registry);
  registry.GetCounter("pool.draws").Set(pool_.draw_count());
  registry.GetCounter("pool.refills").Set(pool_.refill_count());
  registry.GetCounter("pool.bypasses").Set(pool_.bypass_count());
  registry.GetCounter("pool.inserts").Set(pool_.insert_count());
  registry.GetGauge("pool.size").Set(static_cast<double>(pool_.pool_size()));
  registry.GetGauge("pool.entropy_bits").Set(pool_.entropy_bits());
  registry.GetCounter("deferred_free.dummies").Set(deferred_.dummies_pushed());
  registry.GetGauge("deferred_free.pending").Set(static_cast<double>(deferred_.pending()));
  registry.GetGauge("fusion.round").Set(static_cast<double>(round_));
  registry.GetGauge("fusion.stable_tree_size").Set(static_cast<double>(stable_.size()));
  if (delta_mode_) {
    delta_.ExportMetrics(registry);
  }
}

FrameId VUsionEngine::AllocBacking() {
  LatencyModel& lm = machine_->latency();
  lm.Charge(lm.config().buddy_alloc);
  const FrameId frame = pool_.Allocate();
  if (frame != kInvalidFrame) {
    stats_.LogAllocation(frame);
    if (stats_.log_allocations && pool_.last_slot_fraction() >= 0.0) {
      stats_.slot_log.push_back(pool_.last_slot_fraction());
    }
  }
  return frame;
}

void VUsionEngine::Run() {
  if (SkipWake()) {
    return;
  }
  // Chaos may be enabled after engine construction; resync the pool's hook here.
  pool_.set_fault_injector(machine_->chaos());
  // Background deferred-free worker: queued frames re-enter the entropy pool.
  deferred_.Drain(pool_);
  const auto scan_start = std::chrono::steady_clock::now();
  NotifyPhase(ScanPhase::kQuantumStart);
  // Refresh the pool every quantum (a Fleet installs its shared pool after
  // construction); any pool selects the pipelined path.
  host::ThreadPool* host_pool = machine_->HostPool(config_.scan_threads);
  pipeline_.set_pool(host_pool);
  if (host_pool != nullptr) {
    ScanQuantumPipelined();
  } else {
    ScanQuantumSerial();
  }
  NotifyPhase(ScanPhase::kQuantumEnd);
  timing_.scan_ns += static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - scan_start)
          .count());
  ++timing_.batches;
  next_run_ = machine_->clock().now() + config_.wake_period;
}

void VUsionEngine::ScanQuantumSerial() {
  // Batch the quantum's charges; emits and phase hooks flush (see LatencyModel).
  ChargeSpan span(machine_->latency());
  FaultInjector* injector = chaos();
  for (std::size_t i = 0; i < config_.pages_per_wake; ++i) {
    // Injected scan interruption: abandon the rest of the quantum (pages not
    // yet consumed from the cursor are simply picked up next wake).
    if (injector != nullptr && injector->ShouldFail(FaultSite::kScanInterrupt)) {
      injector->RecordDegradation();
      break;
    }
    Process* process = nullptr;
    Vpn vpn = 0;
    bool wrapped = false;
    if (!cursor_.Next(process, vpn, wrapped)) {
      break;
    }
    if (wrapped) {
      ++round_;
      ++stats_.full_scans;
    }
    timing_.items += 1;
    ScanOne(*process, vpn);
  }
}

void VUsionEngine::ScanQuantumPipelined() {
  // Collect the quantum first; ScanOne mutates only PTEs and frames, never the
  // process/VMA structure the cursor iterates, so the sequence matches the serial
  // interleaving.
  ChargeSpan span(machine_->latency());
  FaultInjector* injector = chaos();
  batch_.clear();
  for (std::size_t i = 0; i < config_.pages_per_wake; ++i) {
    if (injector != nullptr && injector->ShouldFail(FaultSite::kScanInterrupt)) {
      injector->RecordDegradation();
      break;
    }
    Process* process = nullptr;
    Vpn vpn = 0;
    bool wrapped = false;
    if (!cursor_.Next(process, vpn, wrapped)) {
      break;
    }
    host::ScanItem item;
    item.process = process;
    item.as = &process->address_space();
    item.pid = process->id();
    item.vpn = vpn;
    item.wrapped = wrapped;
    batch_.push_back(item);
  }
  NotifyPhase(ScanPhase::kBatchCollected);
  PruneDeadItems();
  // Phase-1 filter: hash only pages the serial scan body would hash. The
  // predicate mirrors ScanOne's path to Act (managed pages only relocate,
  // accessed/young candidates are skipped), reading engine state that nothing
  // mutates during phase 1. It is advisory: a wrong guess costs host time only —
  // a skipped page that phase 2 does hash goes through HashContent serially, and
  // a wasted snapshot is dropped by PrimeHash's generation check. (Items after a
  // cursor wrap see the pre-wrap round_ here; same advisory slack.)
  const auto filter = [this](const Pte& pte, const host::ScanItem& item) {
    if (pte.huge() && config_.thp_aware &&
        (item.vpn & (kPagesPerHugePage - 1)) != 0) {
      return false;  // THP considered only at its base VPN
    }
    const PageInfo* info = nullptr;
    const auto pit = pages_.find(item.process->id());
    if (pit != pages_.end()) {
      const auto it = pit->second.find(item.vpn);
      if (it != pit->second.end()) {
        info = &it->second;
      }
    }
    if (info != nullptr && info->managed) {
      return false;  // (fake) merged: re-randomized without rehashing
    }
    if (config_.working_set_estimation) {
      if (IdleTracker::IsAccessed(*item.as, item.vpn)) {
        return false;  // in the working set: candidacy is dropped, no hash
      }
      if (info == nullptr) {
        return false;  // first idle sighting only records candidacy
      }
      if (round_ < info->candidate_round + config_.min_idle_rounds) {
        return false;  // not idle long enough yet
      }
    }
    const FrameId frame =
        pte.frame + (pte.huge() ? (item.vpn & (kPagesPerHugePage - 1)) : 0);
    return machine_->memory().refcount(frame) == 0;  // fork-shared: kernel's CoW
  };
  host::ParallelScanPipeline::Phase1Probe probe;
  if (delta_mode_) {
    // Managed pages replay without a PTE resolve or hash; a valid entry in
    // phase 1 stays valid through phase 2 (nothing mutates the cache between).
    probe = [this](const host::ScanItem& item) {
      return delta_.PeekValid(item.pid, item.vpn, /*epoch=*/0);
    };
  }
  // The kHashed boundary only exists for an armed phase hook; leaving
  // between_phases null otherwise lets the pipeline take the streaming shape.
  std::function<void()> between_phases;
  if (phase_hook_) {
    between_phases = [this] {
      NotifyPhase(ScanPhase::kHashed);
      PruneDeadItems();
    };
  }
  pipeline_.Run(
      batch_, timing_, filter,
      [this](host::ScanItem& item) {
        // A phase hook may have torn the process down after collection; the
        // cursor-side effects (round wrap) still apply, the page itself is
        // skipped.
        if (item.wrapped) {
          ++round_;
          ++stats_.full_scans;
        }
        if (item.process == nullptr ||
            machine_->processes()[item.pid] == nullptr) {
          return;
        }
        ScanOne(*item.process, item.vpn);
      },
      between_phases, probe);
}

void VUsionEngine::PruneDeadItems() {
  // Null out batch items whose process died in a phase hook, keeping the items
  // themselves (their wrapped flags still drive round bookkeeping).
  for (host::ScanItem& item : batch_) {
    if (item.process != nullptr && machine_->processes()[item.pid] == nullptr) {
      item.process = nullptr;
      item.as = nullptr;
    }
  }
}

bool VUsionEngine::TryReplay(Process& process, Vpn vpn) {
  // Entries are recorded with epoch 0 and never epoch-checked: validity is
  // enforced by the hooks (UnmergeTo success, OnUnmap, process teardown), which
  // drop the entry at the moment the page stops being managed.
  DeltaPassCache::Entry* e = delta_.Probe(process.id(), vpn, 0);
  if (e == nullptr) {
    return false;
  }
  if (e->kind != kVuManaged || e->ref == nullptr) {
    delta_.Reject(process.id(), vpn);
    return false;
  }
  delta_.NoteReplay();
  ++stats_.pages_scanned;
  if (config_.rerandomize_each_scan) {
    RelocateEntry(static_cast<StableEntry*>(e->ref));
  }
  return true;
}

void VUsionEngine::ScanOne(Process& process, Vpn vpn) {
  if (delta_mode_ && TryReplay(process, vpn)) {
    return;
  }
  ++stats_.pages_scanned;
  AddressSpace& as = process.address_space();
  Pte* pte = as.GetPte(vpn);
  if (pte == nullptr || pte->flags == 0) {
    return;
  }
  if (pte->huge()) {
    if (!config_.thp_aware) {
      // Maximum-fusion mode ("a la KSM", §8.1 with n=512): huge pages are broken
      // up as soon as the scanner reaches them so their subpages are tracked and
      // fused at 4 KB granularity.
      LatencyModel& lm = machine_->latency();
      lm.Charge(lm.config().huge_split);
      as.SplitHuge(vpn);
      lm.FlushPending();
      machine_->trace().Emit(machine_->clock().now(), TraceEventType::kSplit, process.id(),
                             vpn & ~(kPagesPerHugePage - 1), 0);
      ++stats_.thp_splits;
      pte = as.GetPte(vpn);
    } else if (vpn != (vpn & ~(kPagesPerHugePage - 1))) {
      // Performance mode ("a la Ingens", n=1): the THP is considered exactly once
      // per round, at its base VPN. The PMD's accessed bit covers the whole 2 MB
      // range, so per-subpage candidacy would misread it (the first visit clears
      // the bit and the siblings would wrongly look idle).
      return;
    }
  }
  ProcessPages& proc_pages = pages_[process.id()];
  const auto it = proc_pages.find(vpn);
  if (it != proc_pages.end() && it->second.managed) {
    // §7.1(iii): (fake) merged pages get a fresh random backing frame each round so
    // cross-round page coloring on the fault path learns nothing.
    if (config_.rerandomize_each_scan) {
      RelocateEntry(it->second.entry);
    }
    return;
  }
  if (config_.working_set_estimation) {
    const bool accessed = IdleTracker::TestAndClearAccessed(as, vpn);
    if (accessed) {
      // In the working set: not a fusion candidate; forget any candidacy.
      if (it != proc_pages.end()) {
        proc_pages.erase(it);
      }
      return;
    }
    if (it == proc_pages.end()) {
      // First time seen idle: becomes a candidate; act only after it stays idle
      // for min_idle_rounds full rounds (the one-round delay of Figure 10).
      proc_pages[vpn] = PageInfo{false, round_, nullptr};
      return;
    }
    if (round_ < it->second.candidate_round + config_.min_idle_rounds) {
      return;
    }
  }
  if (!pte->present()) {
    return;
  }
  if (machine_->memory().refcount(pte->frame) > 0) {
    return;  // fork-shared: the kernel owns this CoW state
  }
  Act(process, vpn, pte);
}

void VUsionEngine::Act(Process& process, Vpn vpn, Pte* pte) {
  AddressSpace& as = process.address_space();
  LatencyModel& lm = machine_->latency();
  if (pte->huge()) {
    // §8.1: a THP considered for fusion is first broken into normal pages (small
    // pages maximize sharing opportunities). Only this subpage proceeds now; the
    // cursor reaches its siblings later.
    lm.Charge(lm.config().huge_split);
    as.SplitHuge(vpn);
    lm.FlushPending();
    machine_->trace().Emit(machine_->clock().now(), TraceEventType::kSplit, process.id(),
                           vpn & ~(kPagesPerHugePage - 1), 0);
    ++stats_.thp_splits;
    pte = as.GetPte(vpn);
  }
  const FrameId old = pte->frame;
  content_.Hash(old);
  // Charged descent cost depends only on the tree's size, never its shape, so the
  // latency (and noise-RNG) stream is identical in hash- and byte-ordered modes.
  content_.ChargeTreeDescend(stable_.size());
  auto [node, steps] =
      stable_.Find([&](StableEntry* const& e) { return content_.HostOrder(old, e->frame); });

  // Injected merge abort, taking exactly the existing OOM bail-out: the page
  // stays unmanaged (its candidacy is forgotten) and no state was touched.
  if (FaultInjector* injector = chaos();
      injector != nullptr && injector->ShouldFail(FaultSite::kMergeAbort)) {
    injector->RecordDegradation();
    pages_[process.id()].erase(vpn);
    return;
  }
  const FrameId backing = AllocBacking();
  if (backing == kInvalidFrame) {
    pages_[process.id()].erase(vpn);
    return;  // OOM: do not act this round
  }
  lm.Charge(lm.config().page_copy_4k);

  StableEntry* entry = nullptr;
  if (node != nullptr) {
    // Real merge: join the existing entry, relocating it onto the fresh random
    // frame so the instruction stream matches the fake-merge path.
    entry = node->value;
    machine_->memory().CopyFrame(backing, entry->frame);
    for (const Sharer& sharer : entry->sharers) {
      lm.Charge(lm.config().pte_update);
      sharer.process->address_space().SetPte(sharer.vpn, Pte{backing, kManagedFlags});
    }
    deferred_.Push(entry->frame);
    deferred_.Push(old);
    entry->frame = backing;
    entry->relocated_round = round_;
    ++frames_saved_;
    ++stats_.merges;
    lm.FlushPending();
    machine_->trace().Emit(machine_->clock().now(), TraceEventType::kMerge, process.id(),
                           vpn, backing);
    const VmArea* vma = as.vmas().FindContaining(vpn);
    if (vma != nullptr) {
      stats_.RecordMergeType(vma->type);
    }
    if (machine_->memory().IsZero(backing)) {
      ++stats_.zero_page_merges;
    }
  } else {
    // Fake merge: same instructions - allocate, copy, queue the freed frame plus a
    // dummy entry, insert as a refcount-1 stable entry.
    machine_->memory().CopyFrame(backing, old);
    deferred_.Push(old);
    deferred_.PushDummy();
    entry = arena_.New<StableEntry>(StableEntry{backing, {}, round_, nullptr});
    content_.ChargeTreeDescend(stable_.size());
    auto [inserted, insert_steps] = stable_.Insert(entry);
    entry->node = inserted;
    ++stats_.fake_merges;
    lm.FlushPending();
    machine_->trace().Emit(machine_->clock().now(), TraceEventType::kFakeMerge,
                           process.id(), vpn, backing);
  }
  entry->sharers.push_back(Sharer{&process, vpn});
  lm.Charge(lm.config().pte_update);
  as.SetPte(vpn, Pte{entry->frame, kManagedFlags});
  machine_->memory().SetRefcount(entry->frame,
                                 static_cast<std::uint32_t>(entry->sharers.size()));
  pages_[process.id()][vpn] = PageInfo{true, round_, entry};
  if (delta_mode_) {
    DeltaPassCache::Entry& rec = delta_.Record(process.id(), vpn);
    rec.kind = kVuManaged;
    rec.ref = entry;
  }
}

void VUsionEngine::RelocateEntry(StableEntry* entry) {
  if (entry->relocated_round == round_) {
    return;
  }
  const FrameId backing = AllocBacking();
  if (backing == kInvalidFrame) {
    return;
  }
  LatencyModel& lm = machine_->latency();
  lm.Charge(lm.config().page_copy_4k);
  machine_->memory().CopyFrame(backing, entry->frame);
  for (const Sharer& sharer : entry->sharers) {
    lm.Charge(lm.config().pte_update);
    sharer.process->address_space().SetPte(sharer.vpn, Pte{backing, kManagedFlags});
  }
  deferred_.Push(entry->frame);
  entry->frame = backing;
  entry->relocated_round = round_;
  machine_->memory().SetRefcount(backing, static_cast<std::uint32_t>(entry->sharers.size()));
  machine_->latency().FlushPending();
  machine_->trace().Emit(machine_->clock().now(), TraceEventType::kRelocate,
                         entry->sharers.empty() ? 0 : entry->sharers.front().process->id(),
                         entry->sharers.empty() ? 0 : entry->sharers.front().vpn, backing);
}

void VUsionEngine::DetachSharer(StableEntry* entry, const Process& process, Vpn vpn) {
  auto& sharers = entry->sharers;
  for (auto it = sharers.begin(); it != sharers.end(); ++it) {
    if (it->process == &process && it->vpn == vpn) {
      sharers.erase(it);
      return;
    }
  }
}

bool VUsionEngine::UnmergeTo(Process& process, Vpn vpn, PageInfo& info,
                             std::uint16_t new_flags) {
  StableEntry* entry = info.entry;
  LatencyModel& lm = machine_->latency();
  const FrameId fresh = AllocBacking();
  if (fresh == kInvalidFrame) {
    // Transient OOM (or an injected pool failure): leave the page (fake)
    // merged — PTE, entry, and refcount are untouched, so the caller can
    // simply retry later.
    if (FaultInjector* injector = chaos(); injector != nullptr) {
      injector->RecordRetry();
    }
    return false;
  }
  lm.Charge(lm.config().page_copy_4k);
  machine_->memory().CopyFrame(fresh, entry->frame);
  lm.Charge(lm.config().pte_update);
  process.address_space().SetPte(vpn, Pte{fresh, new_flags});

  DetachSharer(entry, process, vpn);
  const bool was_shared = !entry->sharers.empty();
  if (was_shared) {
    --frames_saved_;
    machine_->memory().SetRefcount(entry->frame,
                                   static_cast<std::uint32_t>(entry->sharers.size()));
    // Same instruction stream as the free below: queue a dummy (§7.1(ii)).
    if (config_.deferred_free) {
      deferred_.PushDummy();
    }
  } else {
    stable_.Remove(entry->node);
    if (config_.deferred_free) {
      deferred_.Push(entry->frame);
    } else {
      // Ablation: freeing in the fault handler reopens the timing channel.
      machine_->memory().SetRefcount(entry->frame, 0);
      machine_->FlushFrame(entry->frame);
      lm.Charge(lm.config().buddy_free);
      pool_.Free(entry->frame);
    }
    arena_.Delete(entry);
  }
  if (delta_mode_) {
    // The page left the managed state (every caller drops its PageInfo next);
    // its replay entry must die with it.
    delta_.Invalidate(process.id(), vpn);
  }
  return true;
}

bool VUsionEngine::HandleFault(Process& process, const PageFault& fault) {
  const auto pit = pages_.find(process.id());
  if (pit == pages_.end()) {
    return false;
  }
  const auto it = pit->second.find(fault.vpn);
  if (it == pit->second.end() || !it->second.managed) {
    return false;
  }
  // Copy-on-access: identical for merged and fake-merged pages (SB).
  const auto flags = static_cast<std::uint16_t>(
      kPtePresent | kPteWritable | kPteAccessed |
      (fault.access == AccessType::kWrite ? kPteDirty : 0));
  if (!UnmergeTo(process, fault.vpn, it->second, flags)) {
    // Nothing changed: keep the bookkeeping and claim the fault so the access
    // retries. Dropping the entry here would strand a managed PTE behind the
    // kernel's CoW handler and corrupt the shared frame's refcount.
    return true;
  }
  pit->second.erase(it);
  ++stats_.unmerges_coa;
  machine_->latency().FlushPending();
  machine_->trace().Emit(machine_->clock().now(), TraceEventType::kUnmergeCoa, process.id(),
                         fault.vpn, 0);
  return true;
}

bool VUsionEngine::OnUnmap(Process& process, Vpn vpn) {
  const auto pit = pages_.find(process.id());
  if (pit == pages_.end()) {
    return false;
  }
  const auto it = pit->second.find(vpn);
  if (it == pit->second.end()) {
    return false;
  }
  if (!it->second.managed) {
    pit->second.erase(it);
    return false;  // candidate only: the kernel still owns the frame
  }
  StableEntry* entry = it->second.entry;
  DetachSharer(entry, process, vpn);
  if (entry->sharers.empty()) {
    stable_.Remove(entry->node);
    deferred_.Push(entry->frame);
    arena_.Delete(entry);
  } else {
    --frames_saved_;
    machine_->memory().SetRefcount(entry->frame,
                                   static_cast<std::uint32_t>(entry->sharers.size()));
  }
  pit->second.erase(it);
  if (delta_mode_) {
    delta_.Invalidate(process.id(), vpn);
  }
  return true;
}

bool VUsionEngine::AllowCollapse(Process& process, Vpn base) {
  if (config_.thp_aware) {
    return true;  // PrepareCollapse will (fake) unmerge managed subpages (§8.2)
  }
  const auto pit = pages_.find(process.id());
  if (pit == pages_.end()) {
    return true;
  }
  for (Vpn vpn = base; vpn < base + kPagesPerHugePage; ++vpn) {
    const auto it = pit->second.find(vpn);
    if (it != pit->second.end() && it->second.managed) {
      return false;
    }
  }
  return true;
}

bool VUsionEngine::PrepareCollapse(Process& process, Vpn base) {
  const auto pit = pages_.find(process.id());
  if (pit == pages_.end()) {
    return true;
  }
  for (Vpn vpn = base; vpn < base + kPagesPerHugePage; ++vpn) {
    const auto it = pit->second.find(vpn);
    if (it == pit->second.end()) {
      continue;
    }
    if (it->second.managed) {
      // (Fake) unmerge so khugepaged may copy the page into the new huge block.
      if (!UnmergeTo(process, vpn, it->second,
                     kPtePresent | kPteWritable | kPteAccessed)) {
        // Transient OOM: this subpage is still (fake) merged, so the range
        // cannot be collapsed. khugepaged simply retries the range later.
        return false;
      }
      ++stats_.unmerges_coa;
    }
    pit->second.erase(it);
  }
  return true;
}

void VUsionEngine::OnUnregister(Process& process, Vpn start, std::uint64_t pages) {
  const auto pit = pages_.find(process.id());
  if (pit == pages_.end()) {
    return;
  }
  for (Vpn vpn = start; vpn < start + pages; ++vpn) {
    const auto it = pit->second.find(vpn);
    if (it == pit->second.end()) {
      continue;
    }
    if (it->second.managed) {
      if (!UnmergeTo(process, vpn, it->second,
                     kPtePresent | kPteWritable | kPteAccessed)) {
        // Transient OOM: keep the page managed (and tracked) rather than
        // stranding a fused PTE with no bookkeeping; a later access or scan
        // round unmerges it.
        continue;
      }
      ++stats_.unmerges_coa;
    }
    pit->second.erase(it);
  }
}

void VUsionEngine::OnProcessDestroy(Process& process) {
  // Managed pages were detached through OnUnmap during teardown; dropping the
  // process's bucket releases any remaining candidate bookkeeping in O(its pages).
  pages_.erase(process.id());
  if (delta_mode_) {
    delta_.DropProcess(process.id());
  }
}

void VUsionEngine::AuditInvariants(AuditContext& ctx) const {
  const auto& processes = machine_->processes();
  PhysicalMemory& memory = machine_->memory();

  // Per-process page map: every tracked page belongs to a live process, managed
  // pages sit behind the exact SB PTE encoding, candidates carry no entry.
  std::unordered_map<const StableEntry*, std::size_t> tracked_sharers;
  std::size_t managed_pages = 0;
  for (const auto& [pid, proc_pages] : pages_) {
    if (!ctx.Check(pid < processes.size() && processes[pid] != nullptr, [&] {
          return "vusion: page map holds bucket for dead process " +
                 std::to_string(pid);
        })) {
      continue;
    }
    const AddressSpace& as = processes[pid]->address_space();
    for (const auto& [vpn, info] : proc_pages) {
      if (!info.managed) {
        ctx.Check(info.entry == nullptr, [&] {
          return "vusion: candidate (" + std::to_string(pid) + "," +
                 std::to_string(vpn) + ") carries a stable entry";
        });
        continue;
      }
      ++managed_pages;
      if (!ctx.Check(info.entry != nullptr, [&] {
            return "vusion: managed page (" + std::to_string(pid) + "," +
                   std::to_string(vpn) + ") has no stable entry";
          })) {
        continue;
      }
      ++tracked_sharers[info.entry];
      const Pte* pte = as.GetPte(vpn);
      ctx.Check(
          pte != nullptr && pte->flags == kManagedFlags &&
              pte->frame == info.entry->frame,
          [&] {
            return "vusion: managed page (" + std::to_string(pid) + "," +
                   std::to_string(vpn) +
                   ") PTE does not carry the SB encoding for frame " +
                   std::to_string(info.entry->frame);
          });
    }
  }

  // Stable tree: refcounts, census counts, and sharer lists must agree, and the
  // sharer lists must be exactly the managed pages above (bijection).
  std::size_t tree_sharers = 0;
  stable_.InOrder([&](StableEntry* const& entry) {
    const std::string frame_str = std::to_string(entry->frame);
    tree_sharers += entry->sharers.size();
    ctx.Check(!entry->sharers.empty(), [&] {
      return "vusion: stable entry for frame " + frame_str + " has no sharers";
    });
    ctx.Check(memory.allocated(entry->frame), [&] {
      return "vusion: stable entry points at free frame " + frame_str;
    });
    ctx.Check(memory.refcount(entry->frame) == entry->sharers.size(), [&] {
      return "vusion: frame " + frame_str + " refcount " +
             std::to_string(memory.refcount(entry->frame)) + " != " +
             std::to_string(entry->sharers.size()) + " sharers";
    });
    ctx.Check(ctx.mapped(entry->frame) == entry->sharers.size(), [&] {
      return "vusion: frame " + frame_str + " mapped by " +
             std::to_string(ctx.mapped(entry->frame)) + " PTEs, " +
             std::to_string(entry->sharers.size()) + " sharers";
    });
    ctx.Check(ctx.writable(entry->frame) == 0, [&] {
      return "vusion: (fake) merged frame " + frame_str +
             " has a writable mapping";
    });
    const auto it = tracked_sharers.find(entry);
    ctx.Check(it != tracked_sharers.end() && it->second == entry->sharers.size(),
              [&] {
                return "vusion: frame " + frame_str + " tracked by " +
                       std::to_string(
                           it == tracked_sharers.end() ? 0 : it->second) +
                       " page-map entries, " +
                       std::to_string(entry->sharers.size()) + " sharers";
              });
    for (const Sharer& sharer : entry->sharers) {
      const std::uint32_t pid = sharer.process->id();
      ctx.Check(pid < processes.size() && processes[pid].get() == sharer.process,
                [&] {
        return "vusion: frame " + frame_str +
               " sharer points at dead process " + std::to_string(pid);
      });
    }
  });
  ctx.Check(tree_sharers == managed_pages, [&] {
    return "vusion: tree lists " + std::to_string(tree_sharers) +
           " sharers but page map tracks " + std::to_string(managed_pages) +
           " managed pages";
  });

  // Engine-held reserves: deferred-free frames and pool slots are allocated,
  // unmapped, refcount-0, and owned by exactly one holder.
  for (const FrameId frame : deferred_.pending_frames()) {
    ctx.OwnFrame(frame, "vusion.deferred");
    ctx.Check(memory.allocated(frame) && memory.refcount(frame) == 0 &&
                  ctx.mapped(frame) == 0,
              [&] {
                return "vusion: deferred-free frame " + std::to_string(frame) +
                       " is still live (mapped or refcounted)";
              });
  }
  for (const FrameId frame : pool_.slots()) {
    ctx.OwnFrame(frame, "vusion.pool");
    ctx.Check(memory.allocated(frame) && memory.refcount(frame) == 0 &&
                  ctx.mapped(frame) == 0,
              [&] {
                return "vusion: pool slot frame " + std::to_string(frame) +
                       " is still live (mapped or refcounted)";
              });
  }

  // Delta pass cache: entries are hook-invalidated, so every one must still
  // describe a live managed page whose PageInfo references the same StableEntry.
  delta_.ForEach([&](std::uint32_t pid, Vpn vpn, const DeltaPassCache::Entry& e) {
    if (!ctx.Check(pid < processes.size() && processes[pid] != nullptr, [&] {
          return "vusion: delta entry for dead process " + std::to_string(pid);
        })) {
      return;
    }
    const auto pit = pages_.find(pid);
    const auto it = pit == pages_.end() ? ProcessPages::const_iterator{}
                                        : pit->second.find(vpn);
    const bool managed =
        pit != pages_.end() && it != pit->second.end() && it->second.managed;
    ctx.Check(e.kind == kVuManaged && managed && it->second.entry == e.ref, [&] {
      return "vusion: delta entry (" + std::to_string(pid) + "," +
             std::to_string(vpn) + ") does not match a managed page";
    });
  });
}

void VUsionEngine::ForEachStableEntry(
    const std::function<void(FrameId, const std::vector<std::pair<std::uint32_t, Vpn>>&)>& fn)
    const {
  stable_.InOrder([&fn](StableEntry* const& e) {
    std::vector<std::pair<std::uint32_t, Vpn>> sharers;
    for (const Sharer& s : e->sharers) {
      sharers.emplace_back(s.process->id(), s.vpn);
    }
    fn(e->frame, sharers);
  });
}

bool VUsionEngine::IsManaged(const Process& process, Vpn vpn) const {
  const auto pit = pages_.find(process.id());
  if (pit == pages_.end()) {
    return false;
  }
  const auto it = pit->second.find(vpn);
  return it != pit->second.end() && it->second.managed;
}

bool VUsionEngine::IsShared(const Process& process, Vpn vpn) const {
  const auto pit = pages_.find(process.id());
  if (pit == pages_.end()) {
    return false;
  }
  const auto it = pit->second.find(vpn);
  return it != pit->second.end() && it->second.managed && it->second.entry->sharers.size() > 1;
}

// --- Savestates (DESIGN.md §13) ---

namespace {

Process* VuLiveProcess(Machine& machine, std::uint32_t pid) {
  const auto& processes = machine.processes();
  if (pid >= processes.size() || processes[pid] == nullptr) {
    throw snapshot::RestoreError("engine",
                                 "sharer references dead process " + std::to_string(pid));
  }
  return processes[pid].get();
}

constexpr std::uint32_t kVuNoEntry = 0xffffffffu;

}  // namespace

void VUsionEngine::SaveState(snapshot::SnapshotWriter& w) const {
  SaveCommon(w);
  const ScanCursor::State cur = cursor_.state();
  w.U64(cur.process_idx);
  w.U64(cur.vma_idx);
  w.U64(cur.page_idx);

  // Stable tree, structurally (preorder with colors): Find results under
  // shared-frame content corruption depend on the exact node layout, so the
  // restored tree must be the recorded shape, not a re-insertion.
  std::unordered_map<const StableEntry*, std::uint32_t> index_of;
  w.U64(stable_.size());
  stable_.ExportPreorder([&](StableEntry* const& e, bool red, bool has_left,
                             bool has_right) {
    index_of.emplace(e, static_cast<std::uint32_t>(index_of.size()));
    w.U32(e->frame);
    w.U64(e->relocated_round);
    w.U32(static_cast<std::uint32_t>(e->sharers.size()));
    for (const Sharer& s : e->sharers) {
      w.U32(s.process->id());
      w.U64(s.vpn);
    }
    w.Bool(red);
    w.Bool(has_left);
    w.Bool(has_right);
  });

  pool_.SaveState(w);
  deferred_.SaveState(w);

  std::vector<std::uint32_t> pids;
  pids.reserve(pages_.size());
  for (const auto& [pid, pages] : pages_) {
    pids.push_back(pid);
  }
  std::sort(pids.begin(), pids.end());
  w.U64(pids.size());
  for (const std::uint32_t pid : pids) {
    const ProcessPages& pages = pages_.at(pid);
    w.U32(pid);
    std::vector<Vpn> vpns;
    vpns.reserve(pages.size());
    for (const auto& [vpn, info] : pages) {
      vpns.push_back(vpn);
    }
    std::sort(vpns.begin(), vpns.end());
    w.U64(vpns.size());
    for (const Vpn vpn : vpns) {
      const PageInfo& info = pages.at(vpn);
      w.U64(vpn);
      w.Bool(info.managed);
      w.U64(info.candidate_round);
      w.U32(info.entry == nullptr ? kVuNoEntry : index_of.at(info.entry));
    }
  }

  w.U64(round_);
  w.U64(frames_saved_);
  delta_.SaveState(w, [&index_of](std::uint8_t /*kind*/, void* ref) -> std::uint64_t {
    return ref == nullptr
               ? 0
               : index_of.at(static_cast<const StableEntry*>(ref)) + 1ull;
  });
}

void VUsionEngine::RestoreState(snapshot::SnapshotReader& r) {
  RestoreCommon(r);
  // Restore runs after Install, and Machine::Restore may have created a fault
  // injector that did not exist at install time — re-sync the pool's pointer.
  pool_.set_fault_injector(machine_->chaos());
  ScanCursor::State cur;
  cur.process_idx = static_cast<std::size_t>(r.U64());
  cur.vma_idx = static_cast<std::size_t>(r.U64());
  cur.page_idx = r.U64();
  cursor_.RestoreState(cur);

  const std::uint64_t node_count = r.Count(19);
  std::vector<StableEntry*> entries;
  entries.reserve(node_count);
  stable_.ImportPreorder(
      static_cast<std::size_t>(node_count),
      [&](bool& red, bool& has_left, bool& has_right) -> StableEntry* {
        auto* e = arena_.New<StableEntry>(StableEntry{});
        e->frame = r.U32();
        e->relocated_round = r.U64();
        const std::uint32_t sharer_count = r.U32();
        e->sharers.reserve(std::min<std::uint32_t>(sharer_count, 4096));
        for (std::uint32_t i = 0; i < sharer_count; ++i) {
          const std::uint32_t pid = r.U32();
          const Vpn vpn = r.U64();
          e->sharers.push_back(Sharer{VuLiveProcess(*machine_, pid), vpn});
        }
        red = r.Bool();
        has_left = r.Bool();
        has_right = r.Bool();
        entries.push_back(e);
        return e;
      },
      [](Tree::Node* node) { node->value->node = node; });

  pool_.RestoreState(r);
  deferred_.RestoreState(r);

  pages_.clear();
  const std::uint64_t pid_count = r.Count(13);
  for (std::uint64_t p = 0; p < pid_count; ++p) {
    const std::uint32_t pid = r.U32();
    ProcessPages& pages = pages_[pid];
    const std::uint64_t page_count = r.Count(21);
    pages.reserve(static_cast<std::size_t>(page_count));
    for (std::uint64_t i = 0; i < page_count; ++i) {
      const Vpn vpn = r.U64();
      PageInfo info;
      info.managed = r.Bool();
      info.candidate_round = r.U64();
      const std::uint32_t entry_idx = r.U32();
      if (entry_idx != kVuNoEntry) {
        if (entry_idx >= entries.size()) {
          throw snapshot::RestoreError("engine", "page entry index out of range");
        }
        info.entry = entries[entry_idx];
      }
      if (!pages.emplace(vpn, info).second) {
        throw snapshot::RestoreError("engine", "duplicate tracked page");
      }
    }
  }

  round_ = r.U64();
  frames_saved_ = r.U64();
  delta_.RestoreState(r, [&entries](std::uint8_t /*kind*/, std::uint64_t code) -> void* {
    if (code == 0) {
      return nullptr;
    }
    if (code > entries.size()) {
      throw snapshot::RestoreError("engine", "delta ref out of range");
    }
    return entries[static_cast<std::size_t>(code - 1)];
  });
}

}  // namespace vusion
