// Per-bank open-row (row buffer) timing model with refresh-epoch activation
// counting. The activation counters feed the Rowhammer engine: every row activation
// is reported so it can decide whether victim rows flip.

#ifndef VUSION_SRC_DRAM_ROW_BUFFER_H_
#define VUSION_SRC_DRAM_ROW_BUFFER_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/dram/dram_mapping.h"
#include "src/sim/latency_model.h"

namespace vusion {

namespace snapshot {
class SnapshotWriter;
class SnapshotReader;
}  // namespace snapshot

class RowBuffer {
 public:
  RowBuffer(const DramMapping& mapping, VirtualClock& clock);

  // Savestates: open rows, per-row activation counts (sorted), epoch, totals.
  void SaveState(snapshot::SnapshotWriter& w) const;
  void RestoreState(snapshot::SnapshotReader& r);

  struct AccessResult {
    bool row_hit = false;
    bool activated = false;  // a new row was opened
    DramLocation location;
    std::uint32_t activation_count = 0;  // of the opened row, this refresh epoch
  };

  // Models the access; the caller charges the corresponding latency. Activation
  // counts reset at refresh-epoch boundaries (derived from the virtual clock).
  AccessResult Access(PhysAddr paddr);

  [[nodiscard]] std::uint32_t activations(std::size_t bank, std::uint64_t row) const;
  [[nodiscard]] std::uint64_t current_epoch() const;

  // Lifetime totals (never reset by refresh epochs). A conflict is an activation
  // that had to close a different open row; empty-bank activations are the rest.
  [[nodiscard]] std::uint64_t row_hits() const { return row_hits_; }
  [[nodiscard]] std::uint64_t row_conflicts() const { return row_conflicts_; }
  [[nodiscard]] std::uint64_t total_activations() const { return total_activations_; }

 private:
  void MaybeRollEpoch();
  static std::uint64_t Key(std::size_t bank, std::uint64_t row) {
    return (row << 5) | static_cast<std::uint64_t>(bank);
  }

  const DramMapping* mapping_;
  VirtualClock* clock_;
  std::vector<std::int64_t> open_rows_;  // per bank; -1 = closed
  std::unordered_map<std::uint64_t, std::uint32_t> activation_counts_;
  std::uint64_t epoch_ = 0;
  std::uint64_t row_hits_ = 0;
  std::uint64_t row_conflicts_ = 0;
  std::uint64_t total_activations_ = 0;
};

}  // namespace vusion

#endif  // VUSION_SRC_DRAM_ROW_BUFFER_H_
