file(REMOVE_RECURSE
  "CMakeFiles/vusion_workload.dir/workload/apache_workload.cc.o"
  "CMakeFiles/vusion_workload.dir/workload/apache_workload.cc.o.d"
  "CMakeFiles/vusion_workload.dir/workload/kv_workload.cc.o"
  "CMakeFiles/vusion_workload.dir/workload/kv_workload.cc.o.d"
  "CMakeFiles/vusion_workload.dir/workload/parsec_workload.cc.o"
  "CMakeFiles/vusion_workload.dir/workload/parsec_workload.cc.o.d"
  "CMakeFiles/vusion_workload.dir/workload/postmark_workload.cc.o"
  "CMakeFiles/vusion_workload.dir/workload/postmark_workload.cc.o.d"
  "CMakeFiles/vusion_workload.dir/workload/scenario.cc.o"
  "CMakeFiles/vusion_workload.dir/workload/scenario.cc.o.d"
  "CMakeFiles/vusion_workload.dir/workload/spec_workload.cc.o"
  "CMakeFiles/vusion_workload.dir/workload/spec_workload.cc.o.d"
  "CMakeFiles/vusion_workload.dir/workload/stream_workload.cc.o"
  "CMakeFiles/vusion_workload.dir/workload/stream_workload.cc.o.d"
  "CMakeFiles/vusion_workload.dir/workload/vm_image.cc.o"
  "CMakeFiles/vusion_workload.dir/workload/vm_image.cc.o.d"
  "libvusion_workload.a"
  "libvusion_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vusion_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
