// Telemetry must be a pure observer (the "third clock", see DESIGN.md): running
// the same scenario with the metrics registry enabled and disabled must yield
// bit-identical simulated results — fusion stats, trace events, and charged
// simulated timestamps. A divergence here means a recording site leaked into
// simulated state, latency, or randomness.

#include <gtest/gtest.h>

#include <vector>

#include "src/chaos/invariant_auditor.h"
#include "src/workload/scenario.h"

namespace vusion {
namespace {

struct SimResult {
  FusionStats stats;
  SimTime final_time = 0;
  std::uint64_t consumed_frames = 0;
  std::uint64_t trace_total = 0;
  std::uint64_t trace_dropped = 0;
  std::vector<TraceEvent> events;
};

SimResult RunScenario(EngineKind kind, bool metrics_enabled) {
  ScenarioConfig config;
  config.machine.frame_count = 1u << 15;
  config.fusion.wake_period = 1 * kMillisecond;
  config.fusion.pages_per_wake = 512;
  config.fusion.pool_frames = 2048;
  config.fusion.wpf_period = 100 * kMillisecond;
  config.engine = kind;
  Scenario scenario(config);
  scenario.machine().metrics().set_enabled(metrics_enabled);
  scenario.machine().trace().set_enabled(true);

  VmImageSpec image;
  image.total_pages = 2048;
  scenario.BootVm(image, 1);
  scenario.BootVm(image, 2);
  scenario.RunFor(3 * kSecond);
  // Harvesting must also be side-effect free on the simulation.
  (void)scenario.CollectMetrics();
  scenario.RunFor(1 * kSecond);

  SimResult result;
  if (scenario.engine() != nullptr) {
    result.stats = scenario.engine()->stats();
  }
  result.final_time = scenario.machine().clock().now();
  result.consumed_frames = scenario.consumed_frames();
  result.trace_total = scenario.machine().trace().total_emitted();
  result.trace_dropped = scenario.machine().trace().dropped();
  result.events = scenario.machine().trace().Events();

  // Post-run oracle: the machine must end in a globally consistent state
  // regardless of whether telemetry was recording.
  InvariantAuditor auditor(scenario.machine());
  const AuditReport report = auditor.Audit(scenario.engine());
  EXPECT_GT(report.checks, 0u);
  for (const std::string& violation : report.violations) {
    ADD_FAILURE() << violation;
  }
  return result;
}

void ExpectIdentical(const SimResult& on, const SimResult& off) {
  EXPECT_EQ(on.stats.pages_scanned, off.stats.pages_scanned);
  EXPECT_EQ(on.stats.merges, off.stats.merges);
  EXPECT_EQ(on.stats.fake_merges, off.stats.fake_merges);
  EXPECT_EQ(on.stats.unmerges_cow, off.stats.unmerges_cow);
  EXPECT_EQ(on.stats.unmerges_coa, off.stats.unmerges_coa);
  EXPECT_EQ(on.stats.zero_page_merges, off.stats.zero_page_merges);
  EXPECT_EQ(on.stats.full_scans, off.stats.full_scans);
  EXPECT_EQ(on.stats.thp_splits, off.stats.thp_splits);
  EXPECT_EQ(on.stats.merges_by_type, off.stats.merges_by_type);
  EXPECT_EQ(on.final_time, off.final_time);
  EXPECT_EQ(on.consumed_frames, off.consumed_frames);
  EXPECT_EQ(on.trace_total, off.trace_total);
  EXPECT_EQ(on.trace_dropped, off.trace_dropped);
  ASSERT_EQ(on.events.size(), off.events.size());
  for (std::size_t i = 0; i < on.events.size(); ++i) {
    EXPECT_EQ(on.events[i].time, off.events[i].time) << "event " << i;
    EXPECT_EQ(on.events[i].type, off.events[i].type) << "event " << i;
    EXPECT_EQ(on.events[i].process_id, off.events[i].process_id) << "event " << i;
    EXPECT_EQ(on.events[i].vpn, off.events[i].vpn) << "event " << i;
    EXPECT_EQ(on.events[i].frame, off.events[i].frame) << "event " << i;
  }
}

class MetricsParityTest : public ::testing::TestWithParam<EngineKind> {};

TEST_P(MetricsParityTest, SimulationIsBitIdenticalWithMetricsOnAndOff) {
  const SimResult on = RunScenario(GetParam(), /*metrics_enabled=*/true);
  const SimResult off = RunScenario(GetParam(), /*metrics_enabled=*/false);
  ExpectIdentical(on, off);
}

INSTANTIATE_TEST_SUITE_P(AllEngines, MetricsParityTest,
                         ::testing::Values(EngineKind::kNone, EngineKind::kKsm,
                                           EngineKind::kVUsion, EngineKind::kVUsionThp),
                         [](const ::testing::TestParamInfo<EngineKind>& info) {
                           switch (info.param) {
                             case EngineKind::kNone:
                               return "None";
                             case EngineKind::kKsm:
                               return "Ksm";
                             case EngineKind::kVUsion:
                               return "VUsion";
                             case EngineKind::kVUsionThp:
                               return "VUsionThp";
                             default:
                               return "Other";
                           }
                         });

// Disabling metrics must also leave the registry untouched by the instrumented
// hot paths (the fault path records through pre-registered handles).
TEST(MetricsParityTest, DisabledRegistryStaysEmptyValued) {
  ScenarioConfig config;
  config.machine.frame_count = 1u << 14;
  config.engine = EngineKind::kKsm;
  Scenario scenario(config);
  scenario.machine().metrics().set_enabled(false);
  VmImageSpec image;
  image.total_pages = 512;
  scenario.BootVm(image, 1);
  scenario.RunFor(1 * kSecond);
  const MetricsSnapshot snap = scenario.machine().metrics().Snapshot();
  for (const MetricsSnapshot::Entry& e : snap.entries) {
    EXPECT_EQ(e.count, 0u) << e.Key();
    EXPECT_DOUBLE_EQ(e.value, 0.0) << e.Key();
  }
}

}  // namespace
}  // namespace vusion
