#include "src/sim/ks_test.h"

#include <algorithm>
#include <cmath>

namespace vusion {

double KolmogorovQ(double lambda) {
  if (lambda <= 0.0) {
    return 1.0;
  }
  double sum = 0.0;
  double sign = 1.0;
  for (int k = 1; k <= 100; ++k) {
    const double term = sign * std::exp(-2.0 * k * k * lambda * lambda);
    sum += term;
    if (std::abs(term) < 1e-12) {
      break;
    }
    sign = -sign;
  }
  return std::clamp(2.0 * sum, 0.0, 1.0);
}

KsResult KsTwoSample(std::vector<double> a, std::vector<double> b) {
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  const auto na = static_cast<double>(a.size());
  const auto nb = static_cast<double>(b.size());
  std::size_t i = 0;
  std::size_t j = 0;
  double d = 0.0;
  while (i < a.size() && j < b.size()) {
    const double x = std::min(a[i], b[j]);
    while (i < a.size() && a[i] <= x) {
      ++i;
    }
    while (j < b.size() && b[j] <= x) {
      ++j;
    }
    d = std::max(d, std::abs(static_cast<double>(i) / na - static_cast<double>(j) / nb));
  }
  const double ne = na * nb / (na + nb);
  const double lambda = (std::sqrt(ne) + 0.12 + 0.11 / std::sqrt(ne)) * d;
  return {d, KolmogorovQ(lambda)};
}

KsResult KsUniform(std::vector<double> samples, double lo, double hi) {
  std::sort(samples.begin(), samples.end());
  const auto n = static_cast<double>(samples.size());
  double d = 0.0;
  for (std::size_t k = 0; k < samples.size(); ++k) {
    const double cdf = std::clamp((samples[k] - lo) / (hi - lo), 0.0, 1.0);
    const double above = static_cast<double>(k + 1) / n - cdf;
    const double below = cdf - static_cast<double>(k) / n;
    d = std::max({d, above, below});
  }
  const double sqrt_n = std::sqrt(n);
  const double lambda = (sqrt_n + 0.12 + 0.11 / sqrt_n) * d;
  return {d, KolmogorovQ(lambda)};
}

}  // namespace vusion
