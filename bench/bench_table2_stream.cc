// Table 2: Stream memory-bandwidth benchmark under No-dedup / KSM / VUsion /
// VUsion-THP. Expected shape: all systems within ~1% of each other (the scan rate
// is slow and Stream's arrays are hot, so S-xor-F adds almost nothing).

#include <cstdio>

#include "src/workload/stream_workload.h"
#include "bench/bench_common.h"

namespace vusion {
namespace {

void Run() {
  bench::Reporter reporter("table2_stream");
  reporter.Header("Table 2: Stream bandwidth (MB/s)");
  DescribeEval(reporter, EngineKind::kVUsion);
  std::printf("%-12s %-10s %-10s %-10s %-10s\n", "system", "copy", "scale", "add", "triad");
  double baseline_copy = 0.0;
  for (const EngineKind kind : EvalEngines()) {
    Scenario scenario(EvalScenario(kind));
    for (int i = 0; i < 3; ++i) {
      scenario.BootVm(EvalImage(), 10 + i);  // load VMs feeding the scanner
    }
    Process& bench = scenario.machine().CreateProcess();
    // Arrays well beyond LLC capacity (3 x 16 MB vs 8 MB), as Stream prescribes,
    // so every system is DRAM-bound and cache state cannot skew the comparison.
    StreamWorkload stream(bench, /*array_pages=*/4096);
    scenario.RunFor(30 * kSecond);  // let fusion settle over the idle VMs
    const StreamResult result = stream.Run(/*iterations=*/2);
    std::printf("%-12s %-10.0f %-10.0f %-10.0f %-10.0f\n", EngineKindName(kind),
                result.copy_mbps, result.scale_mbps, result.add_mbps, result.triad_mbps);
    double overhead_pct = 0.0;
    if (kind == EngineKind::kNone) {
      baseline_copy = result.copy_mbps;
    } else if (baseline_copy > 0.0) {
      overhead_pct = 100.0 * (baseline_copy - result.copy_mbps) / baseline_copy;
      std::printf("%12s overhead vs no-dedup: %.2f%%\n", "", overhead_pct);
    }
    reporter.AddRow("bandwidth", {{"system", EngineKindName(kind)},
                                  {"copy_mbps", result.copy_mbps},
                                  {"scale_mbps", result.scale_mbps},
                                  {"add_mbps", result.add_mbps},
                                  {"triad_mbps", result.triad_mbps},
                                  {"copy_overhead_pct", overhead_pct}});
    reporter.AddMetrics(EngineKindName(kind), scenario.CollectMetrics());
  }
  std::printf(
      "\npaper: overhead below 1%% for every system. Note: this simulator models a\n"
      "single CPU, so the scanner daemon's own CPU time is charged against the\n"
      "workload (the paper's 4-core testbed hides it); the comparison that carries\n"
      "over is VUsion vs KSM.\n");
}

}  // namespace
}  // namespace vusion

int main() {
  vusion::Run();
  return 0;
}
