// Shared helper for serializing Rng streams (machine RNG, latency noise RNG,
// fault-injector RNG, randomized-pool RNG, campaign driver RNG) through the
// Rng::state() accessor pair.

#ifndef VUSION_SRC_SNAPSHOT_RNG_CODEC_H_
#define VUSION_SRC_SNAPSHOT_RNG_CODEC_H_

#include "src/sim/rng.h"
#include "src/snapshot/io.h"

namespace vusion::snapshot {

inline void WriteRng(SnapshotWriter& w, const Rng& rng) {
  const Rng::State s = rng.state();
  for (const std::uint64_t word : s.s) {
    w.U64(word);
  }
  w.F64(s.spare_gaussian);
  w.Bool(s.has_spare_gaussian);
}

inline void ReadRng(SnapshotReader& r, Rng& rng) {
  Rng::State s;
  for (std::uint64_t& word : s.s) {
    word = r.U64();
  }
  s.spare_gaussian = r.F64();
  s.has_spare_gaussian = r.Bool();
  rng.RestoreState(s);
}

}  // namespace vusion::snapshot

#endif  // VUSION_SRC_SNAPSHOT_RNG_CODEC_H_
