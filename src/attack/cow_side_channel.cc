#include "src/attack/cow_side_channel.h"

#include <sstream>

namespace vusion {

namespace {
constexpr std::uint64_t kSecretSeed = 0x5ec7e7;
constexpr std::uint64_t kMissSeedBase = 0xdeadbeef00ULL;
}  // namespace

CowSideChannel::Samples CowSideChannel::Collect(AttackEnvironment& env,
                                                std::size_t pages_per_class,
                                                bool use_reads) {
  Process& attacker = env.attacker();
  Process& victim = env.victim();

  // Victim holds a page with the secret content.
  const VirtAddr victim_base =
      victim.AllocateRegion(4, PageType::kAnonymous, /*mergeable=*/true, false);
  victim.SetupMapPattern(VaddrToVpn(victim_base), kSecretSeed);

  // Attacker's guesses: `pages_per_class` copies of the secret guess (hits) and as
  // many unique-content pages (misses).
  const VirtAddr guess_base = attacker.AllocateRegion(
      2 * pages_per_class, PageType::kAnonymous, /*mergeable=*/true, false);
  for (std::size_t i = 0; i < pages_per_class; ++i) {
    attacker.SetupMapPattern(VaddrToVpn(guess_base) + i, kSecretSeed);
    attacker.SetupMapPattern(VaddrToVpn(guess_base) + pages_per_class + i,
                             kMissSeedBase + i);
  }

  env.WaitFusionRounds(6);

  Samples samples;
  for (std::size_t i = 0; i < 2 * pages_per_class; ++i) {
    const VirtAddr vaddr = guess_base + i * kPageSize;
    const SimTime t = use_reads ? env.attacker().TimedRead(vaddr)
                                : env.attacker().TimedWrite(vaddr, 0x41);
    auto& bucket = (i < pages_per_class) ? samples.hit_times : samples.miss_times;
    bucket.push_back(static_cast<double>(t));
  }
  return samples;
}

AttackOutcome CowSideChannel::Run(EngineKind kind, std::uint64_t seed) {
  AttackEnvironment env(kind, seed, AttackMachineConfig(), AttackFusionConfig());
  const Samples samples = Collect(env, 24, /*use_reads=*/false);
  AttackOutcome outcome;
  double p = 0.0;
  outcome.success = TimingDistinguishable(samples.hit_times, samples.miss_times, &p);
  outcome.confidence = 1.0 - p;
  std::ostringstream detail;
  detail << "write-timing KS p=" << p;
  outcome.detail = detail.str();
  return outcome;
}

}  // namespace vusion
