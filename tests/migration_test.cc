// Live replacement of one fusion system by another (the deployment path for
// VUsion on hosts where KSM is running): TearDown breaks every merge into private
// pages, the old engine detaches, the new one takes over, and no content or frame
// accounting is disturbed.

#include <gtest/gtest.h>

#include "src/fusion/ksm.h"
#include "src/fusion/vusion_engine.h"
#include "src/kernel/process.h"

namespace vusion {
namespace {

MachineConfig SmallMachine() {
  MachineConfig config;
  config.frame_count = 1u << 14;
  return config;
}

FusionConfig FastFusion() {
  FusionConfig config;
  config.wake_period = 1 * kMillisecond;
  config.pages_per_wake = 256;
  config.pool_frames = 512;
  return config;
}

TEST(MigrationTest, TearDownBreaksEveryMerge) {
  Machine machine(SmallMachine());
  Ksm ksm(machine, FastFusion());
  ksm.Install();
  Process& a = machine.CreateProcess();
  Process& b = machine.CreateProcess();
  const VirtAddr pa = a.AllocateRegion(32, PageType::kAnonymous, true, false);
  const VirtAddr pb = b.AllocateRegion(32, PageType::kAnonymous, true, false);
  for (int i = 0; i < 32; ++i) {
    a.SetupMapPattern(VaddrToVpn(pa) + i, 0x900 + i);
    b.SetupMapPattern(VaddrToVpn(pb) + i, 0x900 + i);
  }
  for (int i = 0; i < 400 && ksm.frames_saved() < 32; ++i) {
    machine.Idle(1 * kMillisecond);
  }
  ASSERT_EQ(ksm.frames_saved(), 32u);

  ksm.TearDown();
  EXPECT_EQ(ksm.frames_saved(), 0u);
  EXPECT_EQ(ksm.stable_size(), 0u);
  PhysicalMemory probe(1);
  for (int i = 0; i < 32; ++i) {
    EXPECT_NE(a.TranslateFrame(VaddrToVpn(pa) + i), b.TranslateFrame(VaddrToVpn(pb) + i));
    probe.FillPattern(0, 0x900 + i);
    EXPECT_EQ(a.Read64(pa + i * kPageSize), probe.ReadU64(0, 0));
    EXPECT_EQ(b.Read64(pb + i * kPageSize), probe.ReadU64(0, 0));
  }
  ksm.Uninstall();
}

TEST(MigrationTest, KsmToVUsionHandOff) {
  Machine machine(SmallMachine());
  auto ksm = std::make_unique<Ksm>(machine, FastFusion());
  ksm->Install();
  Process& a = machine.CreateProcess();
  Process& b = machine.CreateProcess();
  const VirtAddr pa = a.AllocateRegion(16, PageType::kAnonymous, true, false);
  const VirtAddr pb = b.AllocateRegion(16, PageType::kAnonymous, true, false);
  for (int i = 0; i < 16; ++i) {
    a.SetupMapPattern(VaddrToVpn(pa) + i, 0xa00 + i);
    b.SetupMapPattern(VaddrToVpn(pb) + i, 0xa00 + i);
  }
  for (int i = 0; i < 400 && ksm->frames_saved() < 16; ++i) {
    machine.Idle(1 * kMillisecond);
  }
  ASSERT_EQ(ksm->frames_saved(), 16u);

  // The secure-fusion upgrade: break out, swap engines, let VUsion re-fuse.
  ksm->TearDown();
  ksm->Uninstall();
  ksm.reset();
  VUsionEngine vusion(machine, FastFusion());
  vusion.Install();
  for (int i = 0; i < 800 && vusion.frames_saved() < 16; ++i) {
    machine.Idle(1 * kMillisecond);
  }
  EXPECT_EQ(vusion.frames_saved(), 16u);
  EXPECT_TRUE(vusion.IsShared(a, VaddrToVpn(pa)));
  // Content still intact, now under secure management.
  PhysicalMemory probe(1);
  probe.FillPattern(0, 0xa00);
  EXPECT_EQ(a.Read64(pa), probe.ReadU64(0, 0));
  vusion.Uninstall();
}

TEST(MigrationTest, VUsionTearDownRestoresFullAccess) {
  Machine machine(SmallMachine());
  VUsionEngine engine(machine, FastFusion());
  engine.Install();
  Process& a = machine.CreateProcess();
  const VirtAddr pa = a.AllocateRegion(16, PageType::kAnonymous, true, false);
  for (int i = 0; i < 16; ++i) {
    a.SetupMapPattern(VaddrToVpn(pa) + i, 0xb00 + i);
  }
  for (int i = 0; i < 400 && engine.stats().fake_merges < 16; ++i) {
    machine.Idle(1 * kMillisecond);
  }
  ASSERT_TRUE(engine.IsManaged(a, VaddrToVpn(pa)));
  engine.TearDown();
  EXPECT_EQ(engine.stable_size(), 0u);
  for (int i = 0; i < 16; ++i) {
    const Pte* pte = a.address_space().GetPte(VaddrToVpn(pa) + i);
    EXPECT_TRUE(pte->present());
    EXPECT_TRUE(pte->writable());
    EXPECT_FALSE(pte->reserved_trap());
    EXPECT_FALSE(pte->cache_disabled());
  }
  engine.Uninstall();
}

}  // namespace
}  // namespace vusion
