# Empty compiler generated dependencies file for khugepaged_test.
# This may be replaced when dependencies are built.
