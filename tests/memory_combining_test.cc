#include "src/fusion/memory_combining.h"

#include <gtest/gtest.h>

#include "src/fusion/engine_factory.h"
#include "src/kernel/process.h"

namespace vusion {
namespace {

MachineConfig SmallMachine(FrameId frames = 4096) {
  MachineConfig config;
  config.frame_count = frames;
  return config;
}

FusionConfig McConfig(std::size_t low_watermark) {
  FusionConfig config;
  config.wake_period = 1 * kMillisecond;
  config.mc_low_watermark = low_watermark;
  config.mc_swap_batch = 128;
  return config;
}

VirtAddr MapPages(Process& p, std::size_t count, std::uint64_t seed_base,
                  std::uint64_t dup_classes = ~std::uint64_t{0}) {
  const VirtAddr base = p.AllocateRegion(count, PageType::kAnonymous, true, false);
  for (std::size_t i = 0; i < count; ++i) {
    p.SetupMapPattern(VaddrToVpn(base) + i, seed_base + (i % dup_classes));
  }
  return base;
}

TEST(MemoryCombiningTest, NoPressureNoSwap) {
  Machine machine(SmallMachine());
  MemoryCombining mc(machine, McConfig(/*low_watermark=*/64));
  mc.Install();
  MapPages(machine.CreateProcess(), 256, 0x100);
  machine.Idle(100 * kMillisecond);
  EXPECT_EQ(mc.swapped_pages(), 0u);  // plenty of free memory: the pager is idle
  EXPECT_EQ(mc.frames_saved(), 0u);
  mc.Uninstall();
}

TEST(MemoryCombiningTest, PressureTriggersSwapOfIdlePages) {
  Machine machine(SmallMachine(2048));
  MemoryCombining mc(machine, McConfig(/*low_watermark=*/1024));
  mc.Install();
  Process& p = machine.CreateProcess();
  MapPages(p, 1200, 0x200);  // free drops below the watermark
  machine.Idle(50 * kMillisecond);
  EXPECT_GT(mc.swapped_pages(), 0u);
  EXPECT_GT(mc.frames_saved(), 0u);
  EXPECT_GT(machine.buddy().free_count(), 800u);  // pressure relieved
  mc.Uninstall();
}

TEST(MemoryCombiningTest, DuplicatesShareOneRecord) {
  Machine machine(SmallMachine(2048));
  MemoryCombining mc(machine, McConfig(1024));
  mc.Install();
  Process& p = machine.CreateProcess();
  MapPages(p, 1200, 0x300, /*dup_classes=*/4);  // only 4 distinct contents
  machine.Idle(50 * kMillisecond);
  ASSERT_GT(mc.swapped_pages(), 100u);
  EXPECT_LE(mc.unique_records(), 4u);
  EXPECT_GT(mc.stats().merges, 0u);  // dedup hits inside the store
  // Compressed store is tiny: far fewer frames than pages swapped.
  EXPECT_LT(mc.cache_frames(), mc.swapped_pages() / 8);
  mc.Uninstall();
}

TEST(MemoryCombiningTest, SwapInRestoresExactContent) {
  Machine machine(SmallMachine(2048));
  MemoryCombining mc(machine, McConfig(1024));
  mc.Install();
  Process& p = machine.CreateProcess();
  const VirtAddr base = MapPages(p, 1200, 0x400);
  // Make one page's content unique and partially written.
  p.Write64(base + 7 * kPageSize + 64, 0xfeedf00d);
  machine.Idle(50 * kMillisecond);
  // Find a swapped page and fault it back in.
  ASSERT_GT(mc.swapped_pages(), 0u);
  std::uint64_t checked = 0;
  PhysicalMemory probe(1);
  for (std::size_t i = 0; i < 1200 && checked < 20; ++i) {
    if (!mc.IsSwapped(p, VaddrToVpn(base) + i)) {
      continue;
    }
    ++checked;
    const std::uint64_t got = p.Read64(base + i * kPageSize);  // major fault
    if (i == 7) {
      continue;  // the dirtied page: checked below
    }
    probe.FillPattern(0, 0x400 + i);
    ASSERT_EQ(got, probe.ReadU64(0, 0)) << "page " << i;
    EXPECT_FALSE(mc.IsSwapped(p, VaddrToVpn(base) + i));
  }
  EXPECT_GT(checked, 0u);
  EXPECT_EQ(p.Read64(base + 7 * kPageSize + 64), 0xfeedf00du);
  mc.Uninstall();
}

TEST(MemoryCombiningTest, MajorFaultIsExpensive) {
  Machine machine(SmallMachine(2048));
  MemoryCombining mc(machine, McConfig(1024));
  mc.Install();
  Process& p = machine.CreateProcess();
  const VirtAddr base = MapPages(p, 1200, 0x500);
  machine.Idle(50 * kMillisecond);
  Vpn swapped_vpn = 0;
  for (std::size_t i = 0; i < 1200; ++i) {
    if (mc.IsSwapped(p, VaddrToVpn(base) + i)) {
      swapped_vpn = VaddrToVpn(base) + i;
      break;
    }
  }
  ASSERT_NE(swapped_vpn, 0u);
  const SimTime major = p.TimedRead(VpnToVaddr(swapped_vpn));
  const SimTime warm = p.TimedRead(VpnToVaddr(swapped_vpn));
  EXPECT_GT(major, warm * 10);  // decompress + allocate dominates
  mc.Uninstall();
}

TEST(MemoryCombiningTest, NoCrossProcessSharingEver) {
  // The security property that makes this design immune to the fusion attacks:
  // two processes with identical content never map the same frame.
  Machine machine(SmallMachine(2048));
  MemoryCombining mc(machine, McConfig(1024));
  mc.Install();
  Process& a = machine.CreateProcess();
  Process& b = machine.CreateProcess();
  const VirtAddr pa = MapPages(a, 600, 0x600, 8);
  const VirtAddr pb = MapPages(b, 600, 0x600, 8);
  machine.Idle(50 * kMillisecond);
  for (std::size_t i = 0; i < 600; i += 17) {
    const FrameId fa = a.TranslateFrame(VaddrToVpn(pa) + i);
    const FrameId fb = b.TranslateFrame(VaddrToVpn(pb) + i);
    if (fa != kInvalidFrame && fb != kInvalidFrame) {
      EXPECT_NE(fa, fb);
    }
  }
  mc.Uninstall();
}

TEST(MemoryCombiningTest, UnmapOfSwappedPageDropsRecord) {
  Machine machine(SmallMachine(2048));
  MemoryCombining mc(machine, McConfig(1024));
  mc.Install();
  Process& p = machine.CreateProcess();
  const VirtAddr base = MapPages(p, 1200, 0x700);
  machine.Idle(50 * kMillisecond);
  const std::size_t swapped_before = mc.swapped_pages();
  ASSERT_GT(swapped_before, 0u);
  std::size_t dropped = 0;
  for (std::size_t i = 0; i < 1200 && dropped < 10; ++i) {
    if (mc.IsSwapped(p, VaddrToVpn(base) + i)) {
      p.SetupUnmap(VaddrToVpn(base) + i);
      ++dropped;
    }
  }
  EXPECT_EQ(mc.swapped_pages(), swapped_before - dropped);
  mc.Uninstall();
}

TEST(MemoryCombiningTest, FactoryConstructsIt) {
  Machine machine(SmallMachine());
  auto engine = MakeEngine(EngineKind::kMemoryCombining, machine, FusionConfig{});
  ASSERT_NE(engine, nullptr);
  EXPECT_STREQ(engine->name(), "MemoryCombining");
}

}  // namespace
}  // namespace vusion
