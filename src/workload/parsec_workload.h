// Synthetic PARSEC-style benchmarks (paper Figure 8): same harness as the SPEC
// suite but with the PARSEC applications' profiles (streaming vs pointer-chasing,
// larger shared datasets). fmm/barnes and the netapps category are excluded, as in
// the paper.

#ifndef VUSION_SRC_WORKLOAD_PARSEC_WORKLOAD_H_
#define VUSION_SRC_WORKLOAD_PARSEC_WORKLOAD_H_

#include "src/workload/spec_workload.h"

namespace vusion {

class ParsecWorkload {
 public:
  static std::span<const SyntheticBenchmark> Suite();
};

}  // namespace vusion

#endif  // VUSION_SRC_WORKLOAD_PARSEC_WORKLOAD_H_
