#include "src/fusion/wpf.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "src/kernel/process.h"

namespace vusion {
namespace {

MachineConfig SmallMachine() {
  MachineConfig config;
  config.frame_count = 8192;
  return config;
}

FusionConfig FastWpf() {
  FusionConfig config;
  config.wpf_period = 10 * kMillisecond;
  return config;
}

class WpfTest : public ::testing::Test {
 protected:
  WpfTest() : machine_(SmallMachine()), wpf_(machine_, FastWpf()) { wpf_.Install(); }
  ~WpfTest() override { wpf_.Uninstall(); }

  VirtAddr MapPages(Process& p, std::initializer_list<std::uint64_t> seeds) {
    // WPF needs no madvise opt-in; regions are intentionally not mergeable-marked.
    const VirtAddr base =
        p.AllocateRegion(seeds.size(), PageType::kAnonymous, /*mergeable=*/false, false);
    std::size_t i = 0;
    for (const std::uint64_t seed : seeds) {
      p.SetupMapPattern(VaddrToVpn(base) + i++, seed);
    }
    return base;
  }

  Machine machine_;
  Wpf wpf_;
};

TEST_F(WpfTest, MergesDuplicatesIntoNewFrame) {
  Process& a = machine_.CreateProcess();
  Process& b = machine_.CreateProcess();
  const VirtAddr pa = MapPages(a, {0x111});
  const VirtAddr pb = MapPages(b, {0x111});
  const FrameId fa = a.TranslateFrame(VaddrToVpn(pa));
  const FrameId fb = b.TranslateFrame(VaddrToVpn(pb));
  wpf_.RunPassNow();
  const FrameId shared = a.TranslateFrame(VaddrToVpn(pa));
  EXPECT_EQ(shared, b.TranslateFrame(VaddrToVpn(pb)));
  // Unlike KSM, the combined page is backed by a NEW frame.
  EXPECT_NE(shared, fa);
  EXPECT_NE(shared, fb);
  EXPECT_EQ(wpf_.frames_saved(), 1u);
  EXPECT_TRUE(wpf_.IsMerged(a, VaddrToVpn(pa)));
  EXPECT_EQ(a.Read64(pa), b.Read64(pb));
  EXPECT_TRUE(wpf_.ValidateTrees());
}

TEST_F(WpfTest, CombinedFramesComeFromEndOfMemory) {
  Process& a = machine_.CreateProcess();
  MapPages(a, {0x21, 0x21, 0x22, 0x22, 0x23, 0x23});
  wpf_.RunPassNow();
  ASSERT_EQ(wpf_.pass_allocations().size(), 1u);
  const auto& allocations = wpf_.pass_allocations()[0];
  ASSERT_EQ(allocations.size(), 3u);
  for (const FrameId f : allocations) {
    EXPECT_GT(f, machine_.config().frame_count - 16);
  }
}

TEST_F(WpfTest, SecondPassJoinsExistingCombinedPage) {
  Process& a = machine_.CreateProcess();
  MapPages(a, {0x31, 0x31});
  wpf_.RunPassNow();
  ASSERT_EQ(wpf_.frames_saved(), 1u);
  // A third copy appears later; next pass joins the existing AVL entry without a
  // new allocation.
  Process& b = machine_.CreateProcess();
  const VirtAddr pb = MapPages(b, {0x31});
  wpf_.RunPassNow();
  EXPECT_EQ(wpf_.frames_saved(), 2u);
  EXPECT_TRUE(wpf_.IsMerged(b, VaddrToVpn(pb)));
  EXPECT_TRUE(wpf_.pass_allocations()[1].empty());
}

TEST_F(WpfTest, CowUnmergePreservesOtherSharer) {
  Process& a = machine_.CreateProcess();
  Process& b = machine_.CreateProcess();
  const VirtAddr pa = MapPages(a, {0x41});
  const VirtAddr pb = MapPages(b, {0x41});
  wpf_.RunPassNow();
  ASSERT_TRUE(wpf_.IsMerged(a, VaddrToVpn(pa)));
  const std::uint64_t original = b.Read64(pb);
  a.Write64(pa, 0x999);
  EXPECT_EQ(a.Read64(pa), 0x999u);
  EXPECT_EQ(b.Read64(pb), original);
  EXPECT_FALSE(wpf_.IsMerged(a, VaddrToVpn(pa)));
  EXPECT_TRUE(wpf_.IsMerged(b, VaddrToVpn(pb)));
  EXPECT_EQ(wpf_.stats().unmerges_cow, 1u);
}

TEST_F(WpfTest, FreedCombinedFramesAreReusedNextPass) {
  // The predictable-reuse property of Figure 3.
  Process& a = machine_.CreateProcess();
  const VirtAddr base = MapPages(a, {0x51, 0x51, 0x52, 0x52});
  wpf_.RunPassNow();
  const std::vector<FrameId> first = wpf_.pass_allocations()[0];
  ASSERT_EQ(first.size(), 2u);
  // Release everything via CoW.
  for (int i = 0; i < 4; ++i) {
    a.Write64(base + i * kPageSize, i);
  }
  EXPECT_EQ(wpf_.frames_saved(), 0u);
  // The attacker rewrites her (now private) pages with fresh pair-wise duplicate
  // contents - no new allocations, as in the reuse attack. The next pass's linear
  // allocator re-claims the freed end-of-memory frames (stealing through any
  // relocated pages), reproducing Figure 3's near-perfect reuse.
  PhysicalMemory& mem = machine_.memory();
  mem.FillPattern(a.TranslateFrame(VaddrToVpn(base)), 0x61);
  mem.FillPattern(a.TranslateFrame(VaddrToVpn(base) + 1), 0x61);
  mem.FillPattern(a.TranslateFrame(VaddrToVpn(base) + 2), 0x62);
  mem.FillPattern(a.TranslateFrame(VaddrToVpn(base) + 3), 0x62);
  wpf_.RunPassNow();
  const FrameId f1 = a.TranslateFrame(VaddrToVpn(base));
  const FrameId f2 = a.TranslateFrame(VaddrToVpn(base) + 2);
  ASSERT_TRUE(wpf_.IsMerged(a, VaddrToVpn(base)));
  ASSERT_TRUE(wpf_.IsMerged(a, VaddrToVpn(base) + 2));
  EXPECT_NE(f1, f2);
  EXPECT_TRUE(std::find(first.begin(), first.end(), f1) != first.end())
      << "frame " << f1 << " not reused";
  EXPECT_TRUE(std::find(first.begin(), first.end(), f2) != first.end())
      << "frame " << f2 << " not reused";
}

TEST_F(WpfTest, RunsPeriodicallyAsDaemon) {
  Process& a = machine_.CreateProcess();
  MapPages(a, {0x71, 0x71});
  machine_.Idle(25 * kMillisecond);  // > 2 periods of 10ms
  EXPECT_GE(wpf_.stats().full_scans, 2u);
  EXPECT_EQ(wpf_.frames_saved(), 1u);
}

TEST_F(WpfTest, HashCollisionsDoNotMergeDifferentContent) {
  Process& a = machine_.CreateProcess();
  const VirtAddr base = MapPages(a, {0x81, 0x82, 0x83, 0x84});
  wpf_.RunPassNow();
  EXPECT_EQ(wpf_.frames_saved(), 0u);
  // All four pages still readable with distinct contents.
  std::set<std::uint64_t> words;
  for (int i = 0; i < 4; ++i) {
    words.insert(a.Read64(base + i * kPageSize));
  }
  EXPECT_EQ(words.size(), 4u);
}

TEST_F(WpfTest, UnmapDropsReferenceAndFreesCombined) {
  Process& a = machine_.CreateProcess();
  const VirtAddr base = MapPages(a, {0x91, 0x91});
  wpf_.RunPassNow();
  ASSERT_EQ(wpf_.combined_pages(), 1u);
  a.SetupUnmap(VaddrToVpn(base));
  EXPECT_EQ(wpf_.combined_pages(), 1u);
  a.SetupUnmap(VaddrToVpn(base) + 1);
  EXPECT_EQ(wpf_.combined_pages(), 0u);
  EXPECT_EQ(wpf_.frames_saved(), 0u);
}

TEST_F(WpfTest, ThreeWayGroupMergesTogether) {
  Process& a = machine_.CreateProcess();
  const VirtAddr base = MapPages(a, {0xa1, 0xa1, 0xa1});
  wpf_.RunPassNow();
  EXPECT_EQ(wpf_.frames_saved(), 2u);
  const FrameId shared = a.TranslateFrame(VaddrToVpn(base));
  EXPECT_EQ(a.TranslateFrame(VaddrToVpn(base) + 1), shared);
  EXPECT_EQ(a.TranslateFrame(VaddrToVpn(base) + 2), shared);
  EXPECT_EQ(machine_.memory().refcount(shared), 3u);
}

}  // namespace
}  // namespace vusion
