#include "src/sim/rng.h"

#include <cmath>
#include <numbers>

namespace vusion {

namespace {

std::uint64_t SplitMix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : state_) {
    s = SplitMix64(sm);
  }
}

std::uint64_t Rng::NextBelow(std::uint64_t bound) {
  // Lemire's nearly-divisionless method with rejection for exact uniformity.
  __uint128_t m = static_cast<__uint128_t>(Next()) * bound;
  auto low = static_cast<std::uint64_t>(m);
  if (low < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (low < threshold) {
      m = static_cast<__uint128_t>(Next()) * bound;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::uint64_t Rng::NextInRange(std::uint64_t lo, std::uint64_t hi) {
  return lo + NextBelow(hi - lo + 1);
}

bool Rng::NextBool(double p) {
  if (p <= 0.0) {
    return false;
  }
  if (p >= 1.0) {
    return true;
  }
  return NextDouble() < p;
}

void Rng::Shuffle(std::vector<std::uint32_t>& values) {
  for (std::size_t i = values.size(); i > 1; --i) {
    const std::size_t j = NextBelow(i);
    std::swap(values[i - 1], values[j]);
  }
}

Rng Rng::Fork() { return Rng(Next()); }

}  // namespace vusion
