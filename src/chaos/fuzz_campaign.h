// Seed-based chaos fuzzing campaigns: run a randomized multi-process workload
// (map/write/read/idle/unmap/prefetch/fork/teardown churn) against a fusion
// engine with fault injection enabled, auditing machine-wide invariants as it
// goes. Everything is a pure function of the 64-bit campaign seed — the fault
// schedule is derived from the seed's RNG and recorded as (site, visit) pairs,
// never wall-clock — so any failure replays byte-for-byte from the printed
// repro command, and a failing schedule can be shrunk by bisection while
// preserving replay.

#ifndef VUSION_SRC_CHAOS_FUZZ_CAMPAIGN_H_
#define VUSION_SRC_CHAOS_FUZZ_CAMPAIGN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/chaos/fault_injector.h"
#include "src/fusion/engine_factory.h"

namespace vusion {

struct CampaignOptions {
  EngineKind engine = EngineKind::kVUsion;
  std::uint64_t seed = 1;
  std::size_t steps = 400;        // workload events per campaign
  std::size_t scan_threads = 1;   // engine scan pipeline width
  bool delta_scan = false;        // epoch-based delta scanning (pass cache)
  double fault_rate = 0.01;       // per-visit injection probability, all sites
  std::size_t audit_epoch = 1;    // audit every N events (1 = slow mode)
  bool shrink = true;             // minimize the schedule on failure
  std::string artifact_dir;       // dump trace+metrics here on failure ("" = off)
  // Periodic savestate checkpoints every N workload events (0 = off). On a
  // failure the campaign replays the tail from the nearest pre-failure
  // checkpoint to verify it reproduces the identical violation, and dumps
  // that checkpoint next to the other artifacts.
  std::size_t snapshot_interval = 0;
  // Replay mode: fire exactly this schedule instead of drawing from the RNG.
  bool use_schedule = false;
  std::vector<FaultRecord> schedule;
};

struct CampaignResult {
  bool ok = true;
  std::size_t failed_step = 0;  // workload event index of the first violation
  std::vector<std::string> violations;
  std::vector<FaultRecord> schedule;         // injected faults, in firing order
  std::vector<FaultRecord> shrunk_schedule;  // minimal failing subset
  std::string repro;                         // exact CLI replay command
  std::uint64_t audits = 0;
  std::uint64_t checks = 0;
  std::uint64_t faults_injected = 0;
  std::uint64_t tolerated_throws = 0;  // retry-limit aborts survived gracefully
  // --- Savestate checkpointing (snapshot_interval > 0) ---
  std::size_t snapshots_taken = 0;
  bool has_nearest_snapshot = false;
  std::size_t nearest_snapshot_step = 0;  // last checkpoint at/before the failure
  // True when restoring that checkpoint and replaying the tail reproduced the
  // identical violation at the identical step.
  bool restore_to_failure_ok = false;
  std::string snapshot_path;  // dumped .vsnap (with artifact_dir set)
};

// The engine token accepted by the chaos_fuzz CLI (`--engine`), also used when
// printing repro commands. Returns nullptr for an unknown token.
const char* CampaignEngineToken(EngineKind kind);
bool ParseCampaignEngine(const std::string& token, EngineKind& kind);

class FuzzCampaign {
 public:
  explicit FuzzCampaign(CampaignOptions options) : options_(std::move(options)) {}

  // Runs one campaign; on an invariant failure with shrink enabled, replays
  // bisected sub-schedules (bounded) to minimize it. Deterministic per options.
  CampaignResult Run();

 private:
  CampaignResult RunOnce(const std::vector<FaultRecord>* schedule,
                         bool dump_artifacts);
  std::vector<FaultRecord> ShrinkSchedule(const std::vector<FaultRecord>& failing);
  [[nodiscard]] std::string ReproCommand(const std::vector<FaultRecord>* schedule) const;

  CampaignOptions options_;
};

}  // namespace vusion

#endif  // VUSION_SRC_CHAOS_FUZZ_CAMPAIGN_H_
