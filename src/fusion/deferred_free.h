// VUsion's deferred-free queue (paper §7.1 (ii)): pages released by copy-on-access
// are queued and freed in the background instead of interacting with the allocator
// inside the fault handler. Paths that do not free anything push a *dummy* entry so
// merged and fake-merged pages execute the same instructions - this is what closes
// the residual fault-latency channel (the ablation bench reopens it).

#ifndef VUSION_SRC_FUSION_DEFERRED_FREE_H_
#define VUSION_SRC_FUSION_DEFERRED_FREE_H_

#include <vector>

#include "src/kernel/machine.h"
#include "src/phys/frame_allocator.h"

namespace vusion {

class DeferredFreeQueue {
 public:
  explicit DeferredFreeQueue(Machine& machine) : machine_(&machine) {}

  // Queues a real frame for background freeing. Charges one queue operation.
  void Push(FrameId frame);

  // Queues a no-op entry with identical cost (the "dummy request").
  void PushDummy();

  // Background worker: releases all queued frames into `sink` (VUsion passes its
  // randomized pool so freed frames re-enter the entropy pool).
  void Drain(FrameAllocator& sink);

  [[nodiscard]] std::size_t pending() const { return frames_.size(); }
  // Frames awaiting the background free (frame-accounting audits).
  [[nodiscard]] const std::vector<FrameId>& pending_frames() const { return frames_; }
  [[nodiscard]] std::uint64_t dummies_pushed() const { return dummies_; }

  // Savestates (templated to keep this header snapshot-include-free): queue
  // order matters — Drain frees in push order into the randomized pool.
  template <typename Writer>
  void SaveState(Writer& w) const {
    w.U64(frames_.size());
    for (const FrameId f : frames_) {
      w.U32(f);
    }
    w.U64(dummies_);
  }
  template <typename Reader>
  void RestoreState(Reader& r) {
    frames_.clear();
    const std::uint64_t n = r.Count(4);
    frames_.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) {
      frames_.push_back(r.U32());
    }
    dummies_ = r.U64();
  }

 private:
  Machine* machine_;
  std::vector<FrameId> frames_;
  std::uint64_t dummies_ = 0;
};

}  // namespace vusion

#endif  // VUSION_SRC_FUSION_DEFERRED_FREE_H_
