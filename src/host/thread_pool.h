// Fixed-size host worker pool for the parallel scan pipeline and the fleet
// executor.
//
// This is HOST-side machinery only: it parallelizes the simulator's own wall-clock
// work and must never touch simulated state (VirtualClock, Rng, LatencyModel,
// TraceBuffer, FusionStats) — those are single-threaded by contract; see DESIGN.md,
// "Parallel host, serial sim".
//
// Two dispatch modes, one reusable barrier:
//
//   ParallelFor splits [0, count) into fixed-size chunks handed out from a shared
//   cursor under the pool mutex (dynamic load balancing) — the scan pipeline's
//   phase-1 sharding.
//
//   ParallelTasks hands out single indices with per-task stripe affinity: task t's
//   home stripe is t % thread_count(), and each thread drains its own stripe before
//   stealing from others, so a fleet Machine is stepped by the same thread quantum
//   after quantum (warm caches) while an unbalanced quantum still load-balances.
//
// In both modes the calling thread participates as a worker and the join barrier
// is a plain condition variable keyed on a batch generation counter; all dispatch
// state (cursors, stripe positions, the body reference) lives in fixed pool
// members reused across generations — dispatching a batch performs no heap
// allocation. Bodies are passed as a non-owning Body view instead of a
// std::function for the same reason: the scan pipeline dispatches thousands of
// batches per second and a capturing std::function allocates on every call.
// The first exception thrown by any chunk/task is captured and rethrown on the
// calling thread after the barrier; remaining chunks still run.

#ifndef VUSION_SRC_HOST_THREAD_POOL_H_
#define VUSION_SRC_HOST_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace vusion::host {

class ThreadPool {
 public:
  // Non-owning view of a callable `void(std::size_t begin, std::size_t end)`.
  // The referenced callable must outlive the dispatch call it is passed to; both
  // entry points block until the batch completes, so passing a temporary lambda
  // at the call site is safe.
  class Body {
   public:
    Body() = default;

    template <typename F,
              typename = std::enable_if_t<!std::is_same_v<std::decay_t<F>, Body>>>
    Body(F&& f)  // NOLINT(google-explicit-constructor): implicit by design
        : ctx_(const_cast<void*>(static_cast<const void*>(std::addressof(f)))),
          fn_([](void* ctx, std::size_t begin, std::size_t end) {
            (*static_cast<std::remove_reference_t<F>*>(ctx))(begin, end);
          }) {}

    void operator()(std::size_t begin, std::size_t end) const { fn_(ctx_, begin, end); }
    [[nodiscard]] explicit operator bool() const { return fn_ != nullptr; }

   private:
    void* ctx_ = nullptr;
    void (*fn_)(void*, std::size_t, std::size_t) = nullptr;
  };

  // `threads` is the total concurrency including the calling thread, so the pool
  // spawns threads-1 background workers. threads<=1 spawns none and both dispatch
  // calls run inline.
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t thread_count() const { return workers_.size() + 1; }

  // Runs body(begin, end) over disjoint chunks covering [0, count), concurrently
  // on all pool threads plus the caller, and returns after every chunk completed.
  // grain=0 picks a chunk size targeting a few chunks per thread. Not reentrant:
  // one batch at a time per pool.
  void ParallelFor(std::size_t count, std::size_t grain, Body body);

  // Runs body(t, t+1) once for every task t in [0, count), concurrently, with
  // per-task stripe affinity (task t's home thread is t % thread_count()) and
  // stealing. Returns after every task completed. Not reentrant with ParallelFor
  // or itself.
  void ParallelTasks(std::size_t count, Body body);

 private:
  enum class Mode : std::uint8_t { kChunks, kStriped };

  void WorkerLoop(std::size_t worker_id);
  // Claims and runs work until the current batch is exhausted. `stripe` is the
  // calling thread's home stripe for striped batches.
  void Drain(std::size_t stripe);
  // Next striped task for a thread whose home stripe is `stripe`: own stripe
  // first, then steal round-robin. Returns count_ when nothing is left.
  // Caller holds mu_.
  std::size_t ClaimStripedLocked(std::size_t stripe);
  // Caller holds mu_. True when every chunk/task of the current batch is claimed.
  [[nodiscard]] bool BatchClaimed() const;
  // Dispatches a prepared batch and blocks on the join barrier; rethrows the
  // first captured body exception. Caller must NOT hold mu_.
  void RunBatch(std::size_t caller_stripe);

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable work_ready_;
  std::condition_variable batch_done_;

  // Current batch (all guarded by mu_). body_ is only invoked for work claimed
  // while the batch was live; a worker waking late simply finds the batch
  // exhausted. generation_ is bumped once per batch so sleeping workers key
  // their wait on it instead of per-batch state.
  Body body_;
  Mode mode_ = Mode::kChunks;
  std::uint64_t generation_ = 0;
  std::size_t count_ = 0;
  std::size_t next_ = 0;   // chunks mode: shared cursor
  std::size_t grain_ = 1;  // chunks mode
  // Striped mode: per-stripe position (task = stripe + pos * thread_count()) and
  // total claimed count. Sized once in the constructor, reset (not reallocated)
  // per batch.
  std::vector<std::size_t> stripe_pos_;
  std::size_t claimed_ = 0;
  std::size_t in_flight_ = 0;
  std::exception_ptr first_error_;
  bool shutdown_ = false;
};

}  // namespace vusion::host

#endif  // VUSION_SRC_HOST_THREAD_POOL_H_
