file(REMOVE_RECURSE
  "CMakeFiles/vusion_sim.dir/sim/ks_test.cc.o"
  "CMakeFiles/vusion_sim.dir/sim/ks_test.cc.o.d"
  "CMakeFiles/vusion_sim.dir/sim/latency_model.cc.o"
  "CMakeFiles/vusion_sim.dir/sim/latency_model.cc.o.d"
  "CMakeFiles/vusion_sim.dir/sim/rng.cc.o"
  "CMakeFiles/vusion_sim.dir/sim/rng.cc.o.d"
  "CMakeFiles/vusion_sim.dir/sim/stats.cc.o"
  "CMakeFiles/vusion_sim.dir/sim/stats.cc.o.d"
  "CMakeFiles/vusion_sim.dir/sim/trace.cc.o"
  "CMakeFiles/vusion_sim.dir/sim/trace.cc.o.d"
  "libvusion_sim.a"
  "libvusion_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vusion_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
