// Windows Page Fusion model (paper §2.2), as reverse-engineered by the authors:
//  - no opt-in: every anonymous page is scanned, in full passes every 15 minutes;
//  - candidates are hashed and processed in a hash-sorted order;
//  - fused pages live in AVL trees and are backed by *new* frames from a linear
//    end-of-memory allocator (MiAllocatePagesForMdl model).
//
// Allocating new frames defeats classic Flip Feng Shui, but the allocator's
// restart-from-the-top scan makes frame reuse across passes nearly perfect - the
// property the paper's new reuse-based Flip Feng Shui attack (§5.2) exploits, and
// which bench_fig3_wpf_reuse demonstrates.

#ifndef VUSION_SRC_FUSION_WPF_H_
#define VUSION_SRC_FUSION_WPF_H_

#include <memory>
#include <unordered_map>
#include <vector>

#include "src/container/arena.h"
#include "src/container/avl_tree.h"
#include "src/fusion/content.h"
#include "src/fusion/delta_scan.h"
#include "src/fusion/fusion_engine.h"
#include "src/phys/linear_allocator.h"

namespace vusion {

class Wpf final : public FusionEngine {
 public:
  Wpf(Machine& machine, const FusionConfig& config);
  ~Wpf() override;

  [[nodiscard]] const char* name() const override { return "WPF"; }
  [[nodiscard]] std::uint64_t frames_saved() const override { return frames_saved_; }

  void Run() override;

  [[nodiscard]] const host::ScanTiming* scan_timing() const override { return &timing_; }

  bool HandleFault(Process& process, const PageFault& fault) override;
  bool OnUnmap(Process& process, Vpn vpn) override;
  void OnProcessDestroy(Process& process) override;
  bool AllowCollapse(Process& process, Vpn base) override;

  void ExportMetrics(MetricsRegistry& registry) const override;
  [[nodiscard]] const DeltaPassCache& delta_cache() const { return delta_; }
  bool PrepareCollapse(Process& /*process*/, Vpn /*base*/) override { return true; }
  bool Owns(const Process& process, Vpn vpn) const override {
    return rmap_.contains(KeyOf(process, vpn));
  }

  // Frames newly allocated to back fused pages, one vector per completed pass
  // (the paper's Figure 3 scatter data).
  [[nodiscard]] const std::vector<std::vector<FrameId>>& pass_allocations() const {
    return pass_allocations_;
  }
  [[nodiscard]] std::size_t combined_pages() const { return rmap_bucket_count_; }
  [[nodiscard]] bool IsMerged(const Process& process, Vpn vpn) const;
  [[nodiscard]] bool ValidateTrees() const;

  // Machine-wide consistency check: shard trees, rmap, and the kernel's
  // refcounts/PTEs must all agree. See src/chaos/invariant_auditor.h.
  void AuditInvariants(AuditContext& ctx) const override;

  // Runs one full fusion pass immediately (benches drive passes explicitly).
  void RunPassNow() { DoFusionPass(); }

  // Savestates (DESIGN.md §13).
  [[nodiscard]] bool SupportsSnapshot() const override { return true; }
  void SaveState(snapshot::SnapshotWriter& w) const override;
  void RestoreState(snapshot::SnapshotReader& r) override;

 private:
  static constexpr std::size_t kShards = 16;

  struct Combined {
    FrameId frame = kInvalidFrame;
    std::uint32_t refs = 0;
    std::size_t shard = 0;
    // Content hash captured at insertion. Fingerprint-ordered trees sort by
    // (sort_hash, frame) — both immutable — so removal navigation stays correct
    // even if the frame's content is later mutated (e.g. by a Rowhammer flip).
    std::uint64_t sort_hash = 0;
  };
  struct CombinedCompare {
    Wpf* wpf;
    int operator()(Combined* const& a, Combined* const& b) const;
  };
  using Tree = AvlTree<Combined*, CombinedCompare>;

  struct Candidate {
    std::uint64_t hash = 0;
    Process* process = nullptr;
    std::uint32_t pid = 0;  // stable identity even if the process dies mid-pass
    Vpn vpn = 0;
    FrameId frame = kInvalidFrame;
  };

  static std::uint64_t KeyOf(const Process& process, Vpn vpn) {
    return (static_cast<std::uint64_t>(process.id()) << 40) ^ vpn;
  }

  // Pass-cache entry kinds: the conclusion of the candidate-collection loop for
  // one page. Collection is content-independent (hashing happens later, in
  // HashCandidates, for replayed candidates exactly as for fresh ones), so the
  // entries carry no hash.
  enum DeltaKind : std::uint8_t {
    kWpfSkip = 1,        // PTE absent / not present / huge / reserved trap
    kWpfFused = 2,       // rmap hit: already fused
    kWpfForkShared = 3,  // frame refcount > 0
    kWpfCandidate = 4,   // page was collected as a fusion candidate
  };

  void DoFusionPass();
  // Examines (process, vpn) for the candidate list, replaying the page's
  // memoized conclusion when its guards hold; appends to `candidates` exactly
  // when the reference loop body would have.
  void CollectOne(Process& process, Vpn vpn, FaultInjector* injector,
                  std::vector<Candidate>& candidates);
  // Drops candidates whose process a phase hook tore down mid-pass.
  void PruneDeadCandidates(std::vector<Candidate>& candidates) const;
  // Fills every candidate's hash, charging content_.Hash in candidate order. With
  // scan_threads>1 the host hash values are precomputed in parallel first (phase
  // 1); the charge stream is identical either way.
  void HashCandidates(std::vector<Candidate>& candidates);
  void MergeIntoCombined(const Candidate& candidate, Combined* entry);
  void DropRef(Combined* entry);

  void RecordCollect(std::uint32_t pid, Vpn vpn, std::uint64_t epoch, std::uint8_t kind,
                     FrameId frame);

  ChargedContent content_;
  host::ParallelScanPipeline pipeline_;
  host::ScanTiming timing_;
  LinearAllocator linear_;
  // Node and Combined-entry storage for the shard trees; declared before them so
  // it outlives their destructors (members are destroyed in reverse order).
  Arena arena_;
  std::vector<std::unique_ptr<Tree>> trees_;
  std::unordered_map<std::uint64_t, Combined*> rmap_;
  std::vector<std::vector<FrameId>> pass_allocations_;
  std::uint64_t frames_saved_ = 0;
  std::size_t rmap_bucket_count_ = 0;  // live Combined entries
  DeltaPassCache delta_;
  bool delta_mode_ = false;
};

}  // namespace vusion

#endif  // VUSION_SRC_FUSION_WPF_H_
