#include "src/attack/dedup_est_machina.h"

#include <algorithm>
#include <optional>
#include <set>
#include <sstream>

namespace vusion {

namespace {

// Crafts "known page with embedded value": base pattern + the value at a fixed
// offset, the same construction on both sides so identical values merge.
void CraftPage(Machine& machine, FrameId frame, std::uint64_t stage_seed,
               std::uint64_t value) {
  machine.memory().FillPattern(frame, stage_seed);
  machine.memory().WriteU64(frame, 0x40, value);
}

// Sprays one guess page per candidate in [0, 2^bits), waits for fusion, and times
// a write to each. Returns the recovered value if a decisive outlier exists.
std::optional<std::uint64_t> BruteForceStage(AttackEnvironment& env,
                                             std::uint64_t stage_seed, int bits) {
  Process& attacker = env.attacker();
  Machine& machine = attacker.machine();
  const std::size_t guesses = std::size_t{1} << bits;
  const VirtAddr spray =
      attacker.AllocateRegion(guesses, PageType::kAnonymous, /*mergeable=*/true, false);
  for (std::uint64_t g = 0; g < guesses; ++g) {
    attacker.SetupMapZero(VaddrToVpn(spray) + g);
    CraftPage(machine, attacker.TranslateFrame(VaddrToVpn(spray) + g), stage_seed, g);
  }
  env.WaitFusionRounds(6);
  std::vector<double> times(guesses);
  for (std::uint64_t g = 0; g < guesses; ++g) {
    times[g] = static_cast<double>(attacker.TimedWrite(spray + g * kPageSize, 1));
  }
  const auto max_it = std::max_element(times.begin(), times.end());
  std::vector<double> sorted = times;
  std::nth_element(sorted.begin(), sorted.begin() + guesses / 2, sorted.end());
  // Copy-on-write costs microseconds; cold-cache writes only a few hundred ns.
  if (*max_it <= sorted[guesses / 2] + 1500.0) {
    return std::nullopt;  // no outlier: nothing leaked
  }
  return static_cast<std::uint64_t>(max_it - times.begin());
}

}  // namespace

AttackOutcome DedupEstMachina::RunPartialLeak(EngineKind kind, std::uint64_t seed,
                                              int bits_per_stage) {
  AttackEnvironment env(kind, seed, AttackMachineConfig(), AttackFusionConfig());
  Process& victim = env.victim();
  Machine& machine = victim.machine();
  Rng secret_rng(seed * 71 + 3);
  const std::uint64_t mask = (std::uint64_t{1} << bits_per_stage) - 1;
  const std::uint64_t secret_low = secret_rng.NextBelow(mask + 1);
  const std::uint64_t secret_high = secret_rng.NextBelow(mask + 1);

  // The alignment trick: the 2k-bit secret straddles a page boundary, so each
  // victim page holds only one k-bit half next to otherwise-known bytes.
  const VirtAddr victim_pages =
      victim.AllocateRegion(2, PageType::kAnonymous, /*mergeable=*/true, false);
  victim.SetupMapZero(VaddrToVpn(victim_pages));
  victim.SetupMapZero(VaddrToVpn(victim_pages) + 1);
  CraftPage(machine, victim.TranslateFrame(VaddrToVpn(victim_pages)), 0xdecaf1, secret_low);
  CraftPage(machine, victim.TranslateFrame(VaddrToVpn(victim_pages) + 1), 0xdecaf2,
            secret_high);

  // Two fusion passes, one k-bit brute force each.
  const std::optional<std::uint64_t> low = BruteForceStage(env, 0xdecaf1, bits_per_stage);
  const std::optional<std::uint64_t> high = BruteForceStage(env, 0xdecaf2, bits_per_stage);

  AttackOutcome outcome;
  outcome.success = low.has_value() && high.has_value() && *low == secret_low &&
                    *high == secret_high;
  outcome.confidence = outcome.success ? 1.0 : 0.0;
  std::ostringstream detail;
  detail << "secret=" << ((secret_high << bits_per_stage) | secret_low);
  if (low.has_value() && high.has_value()) {
    detail << " recovered=" << ((*high << bits_per_stage) | *low);
  } else {
    detail << " no decisive outlier (SB holds)";
  }
  outcome.detail = detail.str();
  return outcome;
}

AttackOutcome DedupEstMachina::RunBirthday(EngineKind kind, std::uint64_t seed,
                                           int secret_bits, std::size_t secrets,
                                           std::size_t guesses) {
  AttackEnvironment env(kind, seed, AttackMachineConfig(), AttackFusionConfig());
  Process& attacker = env.attacker();
  Process& victim = env.victim();
  Machine& machine = attacker.machine();
  const std::uint64_t space = std::uint64_t{1} << secret_bits;

  // The victim generates many independent secrets (the JavaScript-runtime heap of
  // the paper's browser attack).
  Rng rng(seed * 131 + 17);
  std::set<std::uint64_t> victim_secrets;
  const VirtAddr victim_base =
      victim.AllocateRegion(secrets, PageType::kAnonymous, /*mergeable=*/true, false);
  for (std::size_t i = 0; i < secrets; ++i) {
    const std::uint64_t secret = rng.NextBelow(space);
    victim_secrets.insert(secret);
    victim.SetupMapZero(VaddrToVpn(victim_base) + i);
    CraftPage(machine, victim.TranslateFrame(VaddrToVpn(victim_base) + i), 0xb1e7, secret);
  }

  // The attacker sprays distinct random candidates.
  std::set<std::uint64_t> candidate_set;
  while (candidate_set.size() < guesses) {
    candidate_set.insert(rng.NextBelow(space));
  }
  const std::vector<std::uint64_t> candidates(candidate_set.begin(), candidate_set.end());
  const VirtAddr spray =
      attacker.AllocateRegion(guesses, PageType::kAnonymous, /*mergeable=*/true, false);
  for (std::size_t g = 0; g < guesses; ++g) {
    attacker.SetupMapZero(VaddrToVpn(spray) + g);
    CraftPage(machine, attacker.TranslateFrame(VaddrToVpn(spray) + g), 0xb1e7,
              candidates[g]);
  }

  env.WaitFusionRounds(6);

  std::vector<double> times(guesses);
  for (std::size_t g = 0; g < guesses; ++g) {
    times[g] = static_cast<double>(attacker.TimedWrite(spray + g * kPageSize, 1));
  }
  std::vector<double> sorted = times;
  std::nth_element(sorted.begin(), sorted.begin() + guesses / 2, sorted.end());
  const double median = sorted[guesses / 2];
  std::size_t leaked = 0;
  std::size_t false_hits = 0;
  for (std::size_t g = 0; g < guesses; ++g) {
    // Absolute margin: a copy-on-write costs microseconds above the median.
    if (times[g] > median + 1500.0) {
      (victim_secrets.contains(candidates[g]) ? leaked : false_hits) += 1;
    }
  }

  AttackOutcome outcome;
  outcome.success = leaked > 0 && false_hits == 0;
  outcome.confidence = static_cast<double>(leaked) / static_cast<double>(secrets);
  std::ostringstream detail;
  detail << "collisions leaked=" << leaked << " false_hits=" << false_hits;
  outcome.detail = detail.str();
  return outcome;
}

}  // namespace vusion
