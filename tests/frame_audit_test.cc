// Frame-accounting property test: after an arbitrary workload, every allocated
// physical frame must be owned by exactly one party - a process mapping (shared
// mappings count once), a page-table node, the engine's entropy pool, the deferred
// free queue, or the swap cache backing. Catches frame leaks and double-ownership
// across all engines.

#include <gtest/gtest.h>

#include <set>

#include "src/fusion/engine_factory.h"
#include "src/fusion/ksm.h"
#include "src/fusion/memory_combining.h"
#include "src/fusion/vusion_engine.h"
#include "src/fusion/wpf.h"
#include "src/kernel/process.h"

namespace vusion {
namespace {

struct Audit {
  std::set<FrameId> mapped;       // data frames reachable from any PTE
  std::set<FrameId> page_tables;  // frames backing table nodes
  std::set<FrameId> engine_held;  // pool slots, deferred queue, swap cache
  std::size_t double_owned = 0;
};

Audit Collect(Machine& machine, FusionEngine* engine) {
  Audit audit;
  for (const auto& process : machine.processes()) {
    if (process == nullptr) {
      continue;
    }
    auto& table = process->address_space().page_table();
    std::vector<FrameId> nodes;
    table.CollectNodeFrames(nodes);
    audit.page_tables.insert(nodes.begin(), nodes.end());
    table.ForEachEntry(0, Vpn{1} << 36, [&](Vpn, Pte& pte) {
      if (pte.frame == kInvalidFrame) {
        return;  // swapped-out marker
      }
      if (pte.huge()) {
        for (FrameId f = pte.frame; f < pte.frame + kPagesPerHugePage; ++f) {
          audit.mapped.insert(f);
        }
      } else {
        audit.mapped.insert(pte.frame);
      }
    });
  }
  auto add_engine_frames = [&audit](const std::vector<FrameId>& frames) {
    for (const FrameId f : frames) {
      if (!audit.engine_held.insert(f).second) {
        ++audit.double_owned;
      }
    }
  };
  if (auto* vusion = dynamic_cast<VUsionEngine*>(engine)) {
    add_engine_frames(vusion->pool().slots());
    add_engine_frames(vusion->deferred_queue().pending_frames());
  }
  if (auto* mc = dynamic_cast<MemoryCombining*>(engine)) {
    add_engine_frames(mc->cache_backing());
  }
  return audit;
}

void CheckAudit(Machine& machine, FusionEngine* engine) {
  const Audit audit = Collect(machine, engine);
  EXPECT_EQ(audit.double_owned, 0u);
  std::set<FrameId> all;
  std::size_t overlaps = 0;
  for (const auto* set : {&audit.mapped, &audit.page_tables, &audit.engine_held}) {
    for (const FrameId f : *set) {
      EXPECT_TRUE(machine.memory().allocated(f)) << "owner holds a free frame " << f;
      if (!all.insert(f).second) {
        ++overlaps;
      }
    }
  }
  EXPECT_EQ(overlaps, 0u) << "a frame has two distinct owners";
  // No leaks: every allocated frame has an owner.
  EXPECT_EQ(all.size(), machine.memory().allocated_count());
}

struct AuditParam {
  EngineKind kind;
  std::uint64_t seed;
};

class FrameAuditTest : public ::testing::TestWithParam<AuditParam> {};

TEST_P(FrameAuditTest, NoLeaksNoDoubleOwnership) {
  const AuditParam param = GetParam();
  MachineConfig machine_config;
  machine_config.frame_count = 1u << 14;
  machine_config.seed = param.seed;
  Machine machine(machine_config);
  FusionConfig fusion_config;
  fusion_config.wake_period = 1 * kMillisecond;
  fusion_config.pages_per_wake = 256;
  fusion_config.pool_frames = 512;
  fusion_config.wpf_period = 10 * kMillisecond;
  // Permanent pressure so the MemoryCombining variant actually swaps.
  fusion_config.mc_low_watermark = machine_config.frame_count;
  auto engine = MakeEngine(param.kind, machine, fusion_config);
  if (engine != nullptr) {
    engine->Install();
  }

  // Random workload: map, write, read, idle, unmap, huge-map.
  constexpr std::size_t kPages = 512;
  Process& a = machine.CreateProcess();
  Process& b = machine.CreateProcess();
  const VirtAddr base_a = a.AllocateRegion(kPages, PageType::kAnonymous, true, false);
  const VirtAddr base_b = b.AllocateRegion(kPages, PageType::kAnonymous, true, true);
  Rng rng(param.seed * 13 + 5);
  for (std::size_t i = 0; i < kPages; ++i) {
    a.SetupMapPattern(VaddrToVpn(base_a) + i, 0x5000 + (i % 32));
    b.SetupMapPattern(VaddrToVpn(base_b) + i, 0x5000 + (i % 32));
  }
  std::vector<Process*> children;
  for (int step = 0; step < 800; ++step) {
    const std::size_t page = rng.NextBelow(kPages);
    Process& proc = rng.NextBool(0.5) ? a : b;
    const VirtAddr base = (&proc == &a) ? base_a : base_b;
    switch (rng.NextBelow(6)) {
      case 0:
        proc.Write64(base + page * kPageSize, step);
        break;
      case 1:
        // Reads of previously-unmapped pages demand-fault a fresh zero page.
        proc.Read64(base + page * kPageSize);
        break;
      case 2:
        machine.Idle(rng.NextInRange(1, 4) * kMillisecond);
        break;
      case 3:
        if (&proc == &a) {
          a.SetupUnmap(VaddrToVpn(base_a) + page);  // no-op if already unmapped
        }
        break;
      case 4:
        proc.Prefetch(base + page * kPageSize);
        break;
      default:
        // Occasional fork/exit churn: children share CoW with b, dirty a few
        // pages, and half of them exit again.
        if (children.size() < 4) {
          Process& child = machine.ForkProcess(b);
          child.Write64(base_b + page * kPageSize, step);
          children.push_back(&child);
        } else {
          machine.DestroyProcess(*children.back());
          children.pop_back();
        }
        break;
    }
  }
  machine.Idle(50 * kMillisecond);
  CheckAudit(machine, engine.get());
  if (engine != nullptr) {
    engine->Uninstall();
  }
}

std::string AuditName(const ::testing::TestParamInfo<AuditParam>& info) {
  std::string name = EngineKindName(info.param.kind);
  for (char& c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c))) {
      c = '_';
    }
  }
  return name + "_s" + std::to_string(info.param.seed);
}

INSTANTIATE_TEST_SUITE_P(
    Engines, FrameAuditTest,
    ::testing::Values(AuditParam{EngineKind::kNone, 1}, AuditParam{EngineKind::kKsm, 1},
                      AuditParam{EngineKind::kKsm, 2}, AuditParam{EngineKind::kWpf, 1},
                      AuditParam{EngineKind::kVUsion, 1}, AuditParam{EngineKind::kVUsion, 2},
                      AuditParam{EngineKind::kVUsionThp, 1},
                      AuditParam{EngineKind::kMemoryCombining, 1}),
    AuditName);

}  // namespace
}  // namespace vusion
