// Shared statistics and configuration for all three fusion engines.

#ifndef VUSION_SRC_FUSION_FUSION_STATS_H_
#define VUSION_SRC_FUSION_FUSION_STATS_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "src/mmu/vma.h"
#include "src/phys/frame.h"
#include "src/sim/clock.h"

namespace vusion {

struct FusionStats {
  std::uint64_t pages_scanned = 0;
  std::uint64_t merges = 0;        // page joined an existing shared copy
  std::uint64_t fake_merges = 0;   // VUsion only
  std::uint64_t unmerges_cow = 0;  // copy-on-write unmerges
  std::uint64_t unmerges_coa = 0;  // copy-on-access unmerges
  std::uint64_t zero_page_merges = 0;
  std::uint64_t full_scans = 0;    // completed rounds over all mergeable memory
  std::uint64_t thp_splits = 0;
  // Merges attributed to the guest role of the merged page (paper Table 3).
  std::array<std::uint64_t, 4> merges_by_type{};

  // When enabled, every frame chosen to back a (fake) merge or unmerge is logged,
  // along with the pool slot draw (normalized to [0,1)); the RA security bench
  // KS-tests the draws against the uniform distribution.
  bool log_allocations = false;
  std::vector<FrameId> allocation_log;
  std::vector<double> slot_log;

  void RecordMergeType(PageType type) { ++merges_by_type[static_cast<std::size_t>(type)]; }
  void LogAllocation(FrameId frame) {
    if (log_allocations) {
      allocation_log.push_back(frame);
    }
  }

  [[nodiscard]] std::string Summary() const;
};

struct FusionConfig {
  // Scan rate: N pages per T wake-up (KSM defaults from the paper: T=20ms, N=100).
  SimTime wake_period = 20 * kMillisecond;
  std::size_t pages_per_wake = 100;

  // Host threads for the parallel scan pipeline (phase-1 hashing); 1 = the serial
  // reference path. Simulated stats, traces, and charged latencies are
  // bit-identical for every value (see DESIGN.md, "Parallel host, serial sim").
  // The VUSION_SCAN_THREADS environment variable overrides this via
  // ApplyEnvOverrides (used by the TSan CI job to run the whole suite threaded).
  std::size_t scan_threads = 1;

  // Decoupled streaming scan (DESIGN.md §14): when a worker pool is available,
  // overlap phase-1 hashing with the serial merge instead of joining at a
  // barrier. Host-only — simulated results are bit-identical either way (the
  // streaming parity cells prove it). chunk_pages sets the hash-chunk /
  // completion-ticket granularity (0 = auto). VUSION_SCAN_STREAMING (0/1) and
  // VUSION_SCAN_CHUNK override these via ApplyEnvOverrides.
  bool scan_streaming = true;
  std::size_t scan_chunk_pages = 0;

  // Fig 4 comparison knobs (on KSM).
  bool zero_pages_only = false;
  bool unmerge_on_any_access = false;  // "copy-on-access" KSM variant

  // VUsion knobs.
  std::size_t pool_frames = 32768;        // 128 MB => 15 bits of entropy (paper §7.1)
  std::size_t min_idle_rounds = 1;        // full rounds a page must stay idle
  bool working_set_estimation = true;     // ablation: off = act on every page
  bool deferred_free = true;              // ablation: off = reopen timing channel
  bool rerandomize_each_scan = true;      // ablation: off = enable color profiling
  bool thp_aware = false;                 // "VUsion THP": secured khugepaged collapse

  // WPF pass period (paper: 15 minutes).
  SimTime wpf_period = 15 * 60 * kSecond;

  // Ablation: order the fusion trees by raw byte comparison (the reference,
  // pre-fingerprint host behaviour) instead of (content hash, bytes-on-collision).
  // Simulated statistics and charged latencies are bit-identical in both modes;
  // only the simulator's own (wall-clock) cost differs. bench_host_throughput
  // measures the gap; the fingerprint-parity test proves the identity.
  bool byte_ordered_trees = false;

  // Epoch-based delta scanning: memoize each page's scan conclusion and, while
  // the page's write epoch / backing frame / content generation are unchanged,
  // replay the recorded charge-and-stats sequence instead of re-resolving the
  // PTE, re-hashing, and re-descending the trees. Simulated stats, traces, and
  // timestamps are bit-identical with the flag off (the delta parity suite
  // proves it); only host wall-clock changes. Implied off when
  // byte_ordered_trees is set (the ablation wants the reference host path).
  // The VUSION_DELTA_SCAN environment variable (0/1) overrides this via
  // ApplyEnvOverrides.
  bool delta_scan = false;

  // Memory Combining (swap-cache-only dedup, §10.1 related work):
  std::size_t mc_low_watermark = 1024;   // swap out when free frames drop below
  std::size_t mc_swap_batch = 512;       // pages swapped per pressure episode
  double mc_compression_ratio = 3.0;     // modeled compression of the cache

  // Applies recognized environment overrides (see README "Environment overrides"):
  //   VUSION_SCAN_THREADS    — scan_threads (positive integer)
  //   VUSION_DELTA_SCAN      — delta_scan (0 or 1)
  //   VUSION_SCAN_STREAMING  — scan_streaming (0 or 1)
  //   VUSION_SCAN_CHUNK      — scan_chunk_pages (positive integer; 0 = auto)
  // MakeEngine and Scenario call this; direct engine construction does not, so
  // building an engine never silently reads the environment.
  void ApplyEnvOverrides();
};

}  // namespace vusion

#endif  // VUSION_SRC_FUSION_FUSION_STATS_H_
