# Empty dependencies file for bench_fig8_parsec.
# This may be replaced when dependencies are built.
