#include "src/fusion/ksm.h"

#include <chrono>
#include <string>

namespace vusion {

// Tree comparators are pure host-side content orderings; the modeled descent cost
// is charged explicitly (ChargeTreeDescend) at each lookup/insert site.
int Ksm::StableCompare::operator()(StableEntry* const& a, StableEntry* const& b) const {
  return ksm->content_.HostOrder(a->frame, b->frame);
}

int Ksm::UnstableCompare::operator()(const UnstableItem& a, const UnstableItem& b) const {
  return ksm->content_.HostOrder(a.frame, b.frame);
}

Ksm::Ksm(Machine& machine, const FusionConfig& config)
    : FusionEngine(machine, config),
      content_(machine, config.byte_ordered_trees),
      cursor_(machine),
      pipeline_(machine.memory(), machine.HostPool(config_.scan_threads)),
      stable_(StableCompare{this}),
      unstable_(UnstableCompare{this}) {}

Ksm::~Ksm() {
  stable_.InOrder([](StableEntry* const& e) { delete e; });
}

const char* Ksm::name() const {
  if (config_.zero_pages_only) {
    return "KSM-zero-only";
  }
  return config_.unmerge_on_any_access ? "KSM-CoA" : "KSM";
}

std::uint16_t Ksm::MergedFlags(std::uint16_t accessed_bit) const {
  std::uint16_t flags = kPtePresent | kPteCow | accessed_bit;
  if (config_.unmerge_on_any_access) {
    // Figure 4 variant: unmerge on *any* access; reserved bits trap reads too.
    flags |= kPteReserved;
  }
  return flags;
}

void Ksm::Run() {
  if (SkipWake()) {
    return;
  }
  const auto scan_start = std::chrono::steady_clock::now();
  NotifyPhase(ScanPhase::kQuantumStart);
  if (config_.scan_threads > 1) {
    ScanQuantumPipelined();
  } else {
    ScanQuantumSerial();
  }
  NotifyPhase(ScanPhase::kQuantumEnd);
  timing_.scan_ns += static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - scan_start)
          .count());
  ++timing_.batches;
  next_run_ = machine_->clock().now() + config_.wake_period;
}

void Ksm::ScanQuantumSerial() {
  FaultInjector* injector = chaos();
  for (std::size_t i = 0; i < config_.pages_per_wake; ++i) {
    // Injected scan interruption: abandon the rest of the quantum (pages not
    // yet consumed from the cursor are simply picked up next wake).
    if (injector != nullptr && injector->ShouldFail(FaultSite::kScanInterrupt)) {
      injector->RecordDegradation();
      break;
    }
    Process* process = nullptr;
    Vpn vpn = 0;
    bool wrapped = false;
    if (!cursor_.Next(process, vpn, wrapped)) {
      break;
    }
    if (wrapped) {
      // A full round completed: the unstable tree is rebuilt from scratch.
      unstable_.Clear();
      ++stats_.full_scans;
    }
    timing_.items += 1;
    ScanOne(*process, vpn);
  }
}

void Ksm::ScanQuantumPipelined() {
  // Collect the quantum first. ScanOne never changes the process list, VMA
  // layout, or mergeable flags (only PTEs and frame contents), so the cursor
  // yields the exact sequence the serial interleaving would.
  FaultInjector* injector = chaos();
  batch_.clear();
  for (std::size_t i = 0; i < config_.pages_per_wake; ++i) {
    if (injector != nullptr && injector->ShouldFail(FaultSite::kScanInterrupt)) {
      injector->RecordDegradation();
      break;
    }
    Process* process = nullptr;
    Vpn vpn = 0;
    bool wrapped = false;
    if (!cursor_.Next(process, vpn, wrapped)) {
      break;
    }
    host::ScanItem item;
    item.process = process;
    item.as = &process->address_space();
    item.pid = process->id();
    item.vpn = vpn;
    item.wrapped = wrapped;
    batch_.push_back(item);
  }
  NotifyPhase(ScanPhase::kBatchCollected);
  PruneDeadItems();
  pipeline_.Run(
      batch_, timing_, nullptr,
      [this](host::ScanItem& item) {
        // A phase hook may have torn the process down after collection; the
        // cursor-side effects (round wrap) still apply, the page itself is
        // skipped.
        if (item.wrapped) {
          unstable_.Clear();
          ++stats_.full_scans;
        }
        if (item.process == nullptr ||
            machine_->processes()[item.pid] == nullptr) {
          return;
        }
        ScanOne(*item.process, item.vpn);
      },
      [this] {
        NotifyPhase(ScanPhase::kHashed);
        PruneDeadItems();
      });
}

void Ksm::PruneDeadItems() {
  // Null out batch items whose process died in a phase hook, keeping the items
  // themselves (their wrapped flags still drive round bookkeeping).
  for (host::ScanItem& item : batch_) {
    if (item.process != nullptr && machine_->processes()[item.pid] == nullptr) {
      item.process = nullptr;
      item.as = nullptr;
    }
  }
}

void Ksm::ScanOne(Process& process, Vpn vpn) {
  ++stats_.pages_scanned;
  AddressSpace& as = process.address_space();
  Pte* pte = as.GetPte(vpn);
  if (pte == nullptr || !pte->present()) {
    return;
  }
  const std::uint64_t key = KeyOf(process, vpn);
  if (rmap_.contains(key)) {
    return;  // already merged
  }
  if (pte->reserved_trap()) {
    return;
  }
  FrameId frame = pte->frame;
  if (pte->huge()) {
    frame += static_cast<FrameId>(vpn & (kPagesPerHugePage - 1));
  }
  if (machine_->memory().refcount(frame) > 0) {
    return;  // fork-shared with another process: the kernel owns this CoW state
  }
  if (config_.zero_pages_only && !machine_->memory().IsZero(frame)) {
    return;
  }
  content_.Hash(frame);  // the per-scan checksum KSM computes

  // 1) Stable tree lookup (Figure 1-A).
  content_.ChargeTreeDescend(stable_.size());
  auto [stable_node, stable_steps] = stable_.Find(
      [&](StableEntry* const& e) { return content_.HostOrder(frame, e->frame); });
  if (stable_node != nullptr) {
    MergeInto(process, vpn, stable_node->value);
    return;
  }

  // 2) Unstable tree lookup (Figure 1-B).
  content_.ChargeTreeDescend(unstable_.size());
  auto [unstable_node, unstable_steps] = unstable_.Find(
      [&](const UnstableItem& u) { return content_.HostOrder(frame, u.frame); });
  if (unstable_node != nullptr) {
    const UnstableItem item = unstable_node->value;
    unstable_.Remove(unstable_node);
    const bool self = item.process == &process && item.vpn == vpn;
    if (!self && UnstableStillValid(item)) {
      StableEntry* entry = Stabilize(item);
      if (entry != nullptr) {
        MergeInto(process, vpn, entry);
        return;
      }
    }
    // Stale match: fall through and treat the scanned page as unmatched.
  }

  // 3) No match: insert into the unstable tree (Figure 1-C) - but only pages whose
  // contents were stable since the previous scan (KSM's checksum gate).
  const std::uint64_t checksum = machine_->memory().HashContent(frame);
  auto& proc_checksums = checksums_[process.id()];
  if (FaultInjector* injector = chaos();
      injector != nullptr && injector->ShouldFail(FaultSite::kStaleChecksum)) {
    // Forced-stale checksum: the page reads as volatile, deferring its
    // unstable-tree insertion to a later round (graceful skip, never corrupt).
    injector->RecordDegradation();
    proc_checksums[vpn] = ~checksum;
    return;
  }
  const auto it = proc_checksums.find(vpn);
  if (it == proc_checksums.end() || it->second != checksum) {
    proc_checksums[vpn] = checksum;
    return;
  }
  content_.ChargeTreeDescend(unstable_.size());
  unstable_.Insert(UnstableItem{frame, &process, vpn});
}

bool Ksm::UnstableStillValid(const UnstableItem& item) const {
  const AddressSpace& as = item.process->address_space();
  const Pte* pte = as.GetPte(item.vpn);
  if (pte == nullptr || !pte->present() || pte->reserved_trap()) {
    return false;
  }
  FrameId frame = pte->frame;
  if (pte->huge()) {
    frame += static_cast<FrameId>(item.vpn & (kPagesPerHugePage - 1));
  }
  if (frame != item.frame) {
    return false;
  }
  const VmArea* vma = as.vmas().FindContaining(item.vpn);
  if (vma == nullptr || !vma->mergeable) {
    return false;
  }
  return !rmap_.contains(KeyOf(*item.process, item.vpn));
}

Pte* Ksm::EnsureSmallMapping(Process& process, Vpn vpn) {
  AddressSpace& as = process.address_space();
  Pte* pte = as.GetPte(vpn);
  if (pte != nullptr && pte->huge()) {
    // KSM breaks up a THP to merge a 4 KB page inside it (paper §5.1) - the very
    // translation-visible event the AnC attack detects.
    LatencyModel& lm = machine_->latency();
    lm.Charge(lm.config().huge_split);
    as.SplitHuge(vpn);
    machine_->trace().Emit(machine_->clock().now(), TraceEventType::kSplit, process.id(),
                           vpn & ~(kPagesPerHugePage - 1), 0);
    ++stats_.thp_splits;
    pte = as.GetPte(vpn);
  }
  return pte;
}

Ksm::StableEntry* Ksm::Stabilize(const UnstableItem& item) {
  // Injected merge abort before any state is touched: the caller falls through
  // to the unmatched-page path, nothing to roll back.
  if (FaultInjector* injector = chaos();
      injector != nullptr && injector->ShouldFail(FaultSite::kMergeAbort)) {
    injector->RecordDegradation();
    return nullptr;
  }
  Pte* pte = EnsureSmallMapping(*item.process, item.vpn);
  if (pte == nullptr || !pte->present()) {
    return nullptr;
  }
  auto* entry = new StableEntry{pte->frame, 1, nullptr};
  content_.ChargeTreeDescend(stable_.size());
  auto [node, steps] = stable_.Insert(entry);
  entry->node = node;
  const auto accessed = static_cast<std::uint16_t>(pte->flags & kPteAccessed);
  LatencyModel& lm = machine_->latency();
  lm.Charge(lm.config().pte_update);
  item.process->address_space().SetPte(item.vpn, Pte{entry->frame, MergedFlags(accessed)});
  machine_->memory().SetRefcount(entry->frame, 1);
  rmap_[KeyOf(*item.process, item.vpn)] = entry;
  return entry;
}

void Ksm::MergeInto(Process& process, Vpn vpn, StableEntry* entry) {
  if (FaultInjector* injector = chaos();
      injector != nullptr && injector->ShouldFail(FaultSite::kMergeAbort)) {
    injector->RecordDegradation();
    return;  // this page simply stays unmerged until a later round
  }
  Pte* pte = EnsureSmallMapping(process, vpn);
  if (pte == nullptr || !pte->present()) {
    return;
  }
  AddressSpace& as = process.address_space();
  const FrameId old = pte->frame;
  if (old == entry->frame) {
    return;  // already backed by the stable copy
  }
  const auto accessed = static_cast<std::uint16_t>(pte->flags & kPteAccessed);
  LatencyModel& lm = machine_->latency();
  lm.Charge(lm.config().pte_update);
  as.SetPte(vpn, Pte{entry->frame, MergedFlags(accessed)});
  ++entry->refs;
  ++frames_saved_;
  machine_->memory().SetRefcount(entry->frame, entry->refs);
  rmap_[KeyOf(process, vpn)] = entry;

  // The duplicate frame goes straight back to the system - this reuse of *one of
  // the sharing parties' frames* is what Flip Feng Shui abuses.
  machine_->FlushFrame(old);
  lm.Charge(lm.config().buddy_free);
  machine_->buddy().Free(old);

  ++stats_.merges;
  machine_->trace().Emit(machine_->clock().now(), TraceEventType::kMerge, process.id(), vpn,
                         entry->frame);
  stats_.LogAllocation(entry->frame);
  const VmArea* vma = as.vmas().FindContaining(vpn);
  if (vma != nullptr) {
    stats_.RecordMergeType(vma->type);
  }
  if (machine_->memory().IsZero(entry->frame)) {
    ++stats_.zero_page_merges;
  }
}

void Ksm::DropRef(StableEntry* entry) {
  if (entry->refs > 1) {
    --frames_saved_;
  }
  --entry->refs;
  if (entry->refs == 0) {
    stable_.Remove(entry->node);
    machine_->FlushFrame(entry->frame);
    LatencyModel& lm = machine_->latency();
    lm.Charge(lm.config().buddy_free);
    machine_->buddy().Free(entry->frame);
    delete entry;
  } else {
    machine_->memory().SetRefcount(entry->frame, entry->refs);
  }
}

bool Ksm::BreakCow(Process& process, Vpn vpn, StableEntry* entry,
                   std::uint16_t extra_flags) {
  AddressSpace& as = process.address_space();
  LatencyModel& lm = machine_->latency();
  // Copy-on-write unmerge (do_wp_page equivalent).
  lm.Charge(lm.config().buddy_alloc);
  const FrameId fresh = machine_->buddy().Allocate();
  if (fresh == kInvalidFrame) {
    return false;  // OOM
  }
  lm.Charge(lm.config().page_copy_4k);
  machine_->memory().CopyFrame(fresh, entry->frame);
  lm.Charge(lm.config().pte_update);
  as.SetPte(vpn, Pte{fresh, static_cast<std::uint16_t>(kPtePresent | kPteWritable |
                                                       kPteAccessed | extra_flags)});
  rmap_.erase(KeyOf(process, vpn));
  DropRef(entry);
  return true;
}

bool Ksm::HandleFault(Process& process, const PageFault& fault) {
  const auto it = rmap_.find(KeyOf(process, fault.vpn));
  if (it == rmap_.end()) {
    return false;
  }
  const auto dirty = static_cast<std::uint16_t>(
      fault.access == AccessType::kWrite ? kPteDirty : 0);
  if (!BreakCow(process, fault.vpn, it->second, dirty)) {
    // Allocation failed (transient or genuine OOM): the page stays merged and
    // the access path retries the fault. Returning false would hand this
    // engine-owned CoW PTE to the kernel's fork-CoW handler, which would
    // decrement the refcount behind the rmap's back.
    return true;
  }
  if (fault.access == AccessType::kWrite) {
    ++stats_.unmerges_cow;
  } else {
    ++stats_.unmerges_coa;
  }
  machine_->trace().Emit(machine_->clock().now(),
                         fault.access == AccessType::kWrite ? TraceEventType::kUnmergeCow
                                                            : TraceEventType::kUnmergeCoa,
                         process.id(), fault.vpn, 0);
  return true;
}

void Ksm::OnUnregister(Process& process, Vpn start, std::uint64_t pages) {
  // madvise(MADV_UNMERGEABLE): every merged page in the range gets a private copy
  // back (unmerge_ksm_pages equivalent).
  for (Vpn vpn = start; vpn < start + pages; ++vpn) {
    const auto it = rmap_.find(KeyOf(process, vpn));
    if (it == rmap_.end()) {
      continue;
    }
    if (BreakCow(process, vpn, it->second, 0)) {
      ++stats_.unmerges_cow;
    }
    const auto proc_it = checksums_.find(process.id());
    if (proc_it != checksums_.end()) {
      proc_it->second.erase(vpn);
    }
  }
}

bool Ksm::OnUnmap(Process& process, Vpn vpn) {
  const auto it = rmap_.find(KeyOf(process, vpn));
  if (it == rmap_.end()) {
    return false;
  }
  StableEntry* entry = it->second;
  rmap_.erase(it);
  DropRef(entry);
  return true;
}

void Ksm::OnProcessDestroy(Process& process) {
  // The unstable tree holds raw (process, vpn) references; it is rebuilt every
  // round anyway, so clearing it is the faithful equivalent of the kernel's
  // remove_node_from_tree on exit. Checksums of the dead process are dropped in
  // O(its pages) thanks to the per-process index.
  unstable_.Clear();
  checksums_.erase(process.id());
}

bool Ksm::AllowCollapse(Process& process, Vpn base) {
  // Linux khugepaged refuses to collapse ranges containing KSM pages.
  for (Vpn vpn = base; vpn < base + kPagesPerHugePage; ++vpn) {
    if (rmap_.contains(KeyOf(process, vpn))) {
      return false;
    }
  }
  return true;
}

bool Ksm::IsMerged(const Process& process, Vpn vpn) const {
  return rmap_.contains(KeyOf(process, vpn));
}

void Ksm::AuditInvariants(AuditContext& ctx) const {
  const auto& processes = machine_->processes();
  PhysicalMemory& memory = machine_->memory();

  // Count the rmap's view of each stable entry while checking every mapping it
  // claims: the (pid, vpn) must be a live process whose PTE points at the
  // entry's frame with merged (read-only CoW) permissions.
  std::unordered_map<const StableEntry*, std::uint32_t> rmap_refs;
  for (const auto& [key, entry] : rmap_) {
    const auto pid = static_cast<std::uint32_t>(key >> 40);
    const Vpn vpn = key ^ (static_cast<std::uint64_t>(pid) << 40);
    ++rmap_refs[entry];
    if (!ctx.Check(pid < processes.size() && processes[pid] != nullptr, [&] {
          return "ksm: rmap entry for dead process " + std::to_string(pid);
        })) {
      continue;
    }
    const Pte* pte = processes[pid]->address_space().GetPte(vpn);
    ctx.Check(pte != nullptr && pte->present() && pte->frame == entry->frame,
              [&] {
                return "ksm: rmap (" + std::to_string(pid) + "," +
                       std::to_string(vpn) + ") does not map stable frame " +
                       std::to_string(entry->frame);
              });
    ctx.Check(pte == nullptr || (!pte->writable() && pte->cow()), [&] {
      return "ksm: merged page (" + std::to_string(pid) + "," +
             std::to_string(vpn) + ") is not read-only CoW";
    });
  }

  std::size_t tree_entries = 0;
  stable_.InOrder([&](StableEntry* const& entry) {
    ++tree_entries;
    const std::string frame_str = std::to_string(entry->frame);
    ctx.Check(entry->refs >= 1, [&] {
      return "ksm: stable entry for frame " + frame_str + " has zero refs";
    });
    ctx.Check(memory.allocated(entry->frame), [&] {
      return "ksm: stable entry points at free frame " + frame_str;
    });
    ctx.Check(memory.refcount(entry->frame) == entry->refs, [&] {
      return "ksm: frame " + frame_str + " refcount " +
             std::to_string(memory.refcount(entry->frame)) + " != entry refs " +
             std::to_string(entry->refs);
    });
    ctx.Check(ctx.mapped(entry->frame) == entry->refs, [&] {
      return "ksm: frame " + frame_str + " mapped by " +
             std::to_string(ctx.mapped(entry->frame)) + " PTEs, entry refs " +
             std::to_string(entry->refs);
    });
    ctx.Check(ctx.writable(entry->frame) == 0, [&] {
      return "ksm: fused frame " + frame_str + " has a writable mapping";
    });
    const auto it = rmap_refs.find(entry);
    ctx.Check(it != rmap_refs.end() && it->second == entry->refs, [&] {
      return "ksm: frame " + frame_str + " rmap count " +
             std::to_string(it == rmap_refs.end() ? 0 : it->second) +
             " != entry refs " + std::to_string(entry->refs);
    });
  });
  ctx.Check(tree_entries == rmap_refs.size(), [&] {
    return "ksm: stable tree has " + std::to_string(tree_entries) +
           " entries but rmap references " + std::to_string(rmap_refs.size());
  });

  // The per-process checksum index must not reference dead processes.
  for (const auto& [pid, vpns] : checksums_) {
    (void)vpns;
    ctx.Check(pid < processes.size() && processes[pid] != nullptr, [&] {
      return "ksm: checksum index for dead process " + std::to_string(pid);
    });
  }
}

}  // namespace vusion
