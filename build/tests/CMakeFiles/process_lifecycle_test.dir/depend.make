# Empty dependencies file for process_lifecycle_test.
# This may be replaced when dependencies are built.
