#include "src/dram/row_buffer.h"

namespace vusion {

RowBuffer::RowBuffer(const DramMapping& mapping, VirtualClock& clock)
    : mapping_(&mapping), clock_(&clock), open_rows_(mapping.config().banks, -1) {}

std::uint64_t RowBuffer::current_epoch() const {
  return clock_->now() / mapping_->config().refresh_interval;
}

void RowBuffer::MaybeRollEpoch() {
  const std::uint64_t epoch = current_epoch();
  if (epoch != epoch_) {
    epoch_ = epoch;
    activation_counts_.clear();
  }
}

RowBuffer::AccessResult RowBuffer::Access(PhysAddr paddr) {
  MaybeRollEpoch();
  AccessResult result;
  result.location = mapping_->Locate(paddr);
  const auto row_signed = static_cast<std::int64_t>(result.location.row);
  if (open_rows_[result.location.bank] == row_signed) {
    result.row_hit = true;
    ++row_hits_;
    return result;
  }
  if (open_rows_[result.location.bank] != -1) {
    ++row_conflicts_;
  }
  open_rows_[result.location.bank] = row_signed;
  result.activated = true;
  ++total_activations_;
  result.activation_count = ++activation_counts_[Key(result.location.bank, result.location.row)];
  return result;
}

std::uint32_t RowBuffer::activations(std::size_t bank, std::uint64_t row) const {
  const auto it = activation_counts_.find(Key(bank, row));
  return it == activation_counts_.end() ? 0 : it->second;
}

}  // namespace vusion
