#include "src/attack/translation_attack.h"

#include <sstream>

namespace vusion {

namespace {

constexpr std::uint64_t kSecretSeed = 0x7a45ec;
constexpr std::size_t kTrialsPerThp = 48;

// Evicts the attacker's TLB (and pollutes the LLC, pushing page-table entries out)
// by touching a large private buffer.
void EvictTranslationState(Process& attacker, VirtAddr buffer, std::size_t pages) {
  for (std::size_t i = 0; i < pages; ++i) {
    attacker.Read64(buffer + i * kPageSize);
  }
}

}  // namespace

AttackOutcome TranslationAttack::Run(EngineKind kind, std::uint64_t seed) {
  AttackEnvironment env(kind, seed, AttackMachineConfig(), AttackFusionConfig());
  Process& attacker = env.attacker();
  Process& victim = env.victim();
  Machine& machine = attacker.machine();

  // Large buffer for TLB/LLC eviction (bigger than the 1536-entry TLB).
  const std::size_t evict_pages = 2048;
  const VirtAddr evict_base =
      attacker.AllocateRegion(evict_pages, PageType::kAnonymous, /*mergeable=*/false, false);
  for (std::size_t i = 0; i < evict_pages; ++i) {
    attacker.SetupMapPattern(VaddrToVpn(evict_base) + i, 0xe0e0 + i);
  }

  // Two attacker THPs: one with a guess subpage, one control.
  const VirtAddr dup_thp =
      attacker.AllocateRegion(kPagesPerHugePage, PageType::kAnonymous, true, true);
  const VirtAddr ctl_thp =
      attacker.AllocateRegion(kPagesPerHugePage, PageType::kAnonymous, true, true);
  if (!attacker.SetupMapHuge(VaddrToVpn(dup_thp), 0x11110000) ||
      !attacker.SetupMapHuge(VaddrToVpn(ctl_thp), 0x22220000)) {
    return AttackOutcome{false, 0.0, "no contiguous memory for THPs"};
  }
  // Plant the guess as subpage 7 of the dup THP (setup-time content write).
  machine.memory().FillPattern(attacker.TranslateFrame(VaddrToVpn(dup_thp) + 7), kSecretSeed);

  // Victim's secret page the guess should match.
  const VirtAddr victim_base =
      victim.AllocateRegion(4, PageType::kAnonymous, /*mergeable=*/true, false);
  victim.SetupMapPattern(VaddrToVpn(victim_base), kSecretSeed);

  env.WaitFusionRounds(6);

  // Probe translation depth of fresh neighbour subpages of each THP.
  std::vector<double> dup_times;
  std::vector<double> ctl_times;
  for (std::size_t t = 0; t < kTrialsPerThp; ++t) {
    const std::size_t subpage = 32 + t * 9;  // never the guess subpage
    EvictTranslationState(attacker, evict_base, evict_pages);
    dup_times.push_back(
        static_cast<double>(attacker.TimedRead(dup_thp + subpage * kPageSize)));
    EvictTranslationState(attacker, evict_base, evict_pages);
    ctl_times.push_back(
        static_cast<double>(attacker.TimedRead(ctl_thp + subpage * kPageSize)));
  }

  AttackOutcome outcome;
  double p = 0.0;
  outcome.success = TimingDistinguishable(dup_times, ctl_times, &p);
  outcome.confidence = 1.0 - p;
  std::ostringstream detail;
  detail << "neighbour-walk KS p=" << p;
  outcome.detail = detail.str();
  return outcome;
}

}  // namespace vusion
