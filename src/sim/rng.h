// Deterministic pseudo-random number generation for the simulator.
//
// All randomness in the repository flows through Rng so that every experiment is
// reproducible from a single seed. The generator is xoshiro256++ seeded via
// SplitMix64, which is fast, well distributed, and has no global state.

#ifndef VUSION_SRC_SIM_RNG_H_
#define VUSION_SRC_SIM_RNG_H_

#include <cstdint>
#include <vector>

namespace vusion {

// xoshiro256++ PRNG. Not cryptographic; used only for simulation decisions.
class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  // Uniform over the full 64-bit range.
  std::uint64_t Next();

  // Uniform in [0, bound). bound must be > 0. Uses Lemire rejection to avoid bias.
  std::uint64_t NextBelow(std::uint64_t bound);

  // Uniform in [lo, hi] inclusive. Requires lo <= hi.
  std::uint64_t NextInRange(std::uint64_t lo, std::uint64_t hi);

  // Uniform double in [0, 1).
  double NextDouble();

  // True with probability p (clamped to [0,1]).
  bool NextBool(double p);

  // Standard normal via Box-Muller. The transform yields two independent
  // normals per uniform pair; the second is cached and returned by the next
  // call, so consecutive calls alternate between consuming two uniforms and
  // consuming none. Fork() does not inherit the cached spare.
  double NextGaussian();

  // Log-normal with the given median and sigma of the underlying normal. Used by the
  // latency model for realistic timing noise.
  double NextLogNormal(double median, double sigma);

  // Fisher-Yates shuffle of an index vector.
  void Shuffle(std::vector<std::uint32_t>& values);

  // Derives an independent child generator; convenient for giving each subsystem its
  // own stream so call-order changes in one subsystem do not perturb another.
  [[nodiscard]] Rng Fork();

 private:
  std::uint64_t state_[4];
  double spare_gaussian_ = 0.0;
  bool has_spare_gaussian_ = false;
};

}  // namespace vusion

#endif  // VUSION_SRC_SIM_RNG_H_
