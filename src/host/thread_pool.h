// Fixed-size host worker pool for the parallel scan pipeline and the fleet
// executor.
//
// This is HOST-side machinery only: it parallelizes the simulator's own wall-clock
// work and must never touch simulated state (VirtualClock, Rng, LatencyModel,
// TraceBuffer, FusionStats) — those are single-threaded by contract; see DESIGN.md,
// "Parallel host, serial sim".
//
// The pool runs any number of concurrent *streams* (dispatched batches) over one
// worker set. Workers claim work from live streams in submission (FIFO) order, so
// an urgent foreground batch is never starved by a later background one. Three
// entry points share the machinery:
//
//   ParallelFor splits [0, count) into fixed-size chunks handed out from a shared
//   cursor under the pool mutex (dynamic load balancing) and blocks until done —
//   the barrier-mode scan sharding.
//
//   ParallelTasks hands out single indices with per-task stripe affinity: task t's
//   home stripe is t % thread_count(), and each thread drains its own stripe before
//   stealing from others, so a fleet Machine is stepped by the same thread quantum
//   after quantum (warm caches) while an unbalanced quantum still load-balances.
//   Blocks until done.
//
//   BeginStream is the non-blocking form: it submits the chunked batch and returns
//   immediately. Workers (and the caller, via HelpStream) hash chunks while the
//   caller consumes them in ticket order through StreamReadyItems — the in-order
//   completion stream the decoupled scan pipeline drains (DESIGN.md §14).
//   JoinStream blocks for full completion and rethrows the first captured error.
//
// Dispatch calls are reentrant: a body running on a pool thread may itself submit
// and join further streams on the same pool (a fleet Machine's step dispatching
// its scan chunks). The blocking callers participate as workers on their own
// stream, so progress never depends on a free pool thread. Stream records are
// recycled through a free list — steady-state dispatch performs no heap
// allocation — and bodies are passed as a non-owning Body view, not a
// std::function, for the same reason. The first exception thrown by any
// chunk/task is captured and rethrown on the joining thread; remaining chunks
// still run (and a failed chunk still counts as completed, so the in-order
// completion stream never stalls).

#ifndef VUSION_SRC_HOST_THREAD_POOL_H_
#define VUSION_SRC_HOST_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace vusion::host {

class ThreadPool {
 public:
  // Non-owning view of a callable `void(std::size_t begin, std::size_t end)`.
  // The referenced callable must outlive the dispatch: until the blocking call
  // returns, or until JoinStream for BeginStream.
  class Body {
   public:
    Body() = default;

    template <typename F,
              typename = std::enable_if_t<!std::is_same_v<std::decay_t<F>, Body>>>
    Body(F&& f)  // NOLINT(google-explicit-constructor): implicit by design
        : ctx_(const_cast<void*>(static_cast<const void*>(std::addressof(f)))),
          fn_([](void* ctx, std::size_t begin, std::size_t end) {
            (*static_cast<std::remove_reference_t<F>*>(ctx))(begin, end);
          }) {}

    void operator()(std::size_t begin, std::size_t end) const { fn_(ctx_, begin, end); }
    [[nodiscard]] explicit operator bool() const { return fn_ != nullptr; }

   private:
    void* ctx_ = nullptr;
    void (*fn_)(void*, std::size_t, std::size_t) = nullptr;
  };

  // Opaque handle to a live dispatched stream; valid from BeginStream until the
  // JoinStream that retires it.
  class Stream;

  // `threads` is the total concurrency including the calling thread, so the pool
  // spawns threads-1 background workers. threads<=1 spawns none and the blocking
  // dispatch calls run inline (streams are then drained by HelpStream/JoinStream
  // on the caller — the degenerate-but-identical form of the same pipeline).
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t thread_count() const { return workers_.size() + 1; }

  // Runs body(begin, end) over disjoint chunks covering [0, count), concurrently
  // on the pool threads plus the caller, and returns after every chunk completed.
  // grain=0 picks a chunk size targeting a few chunks per thread.
  void ParallelFor(std::size_t count, std::size_t grain, Body body);

  // Runs body(t, t+1) once for every task t in [0, count), concurrently, with
  // per-task stripe affinity (task t's home thread is t % thread_count()) and
  // stealing. Returns after every task completed.
  void ParallelTasks(std::size_t count, Body body);

  // --- Non-blocking streamed dispatch (submit + in-order completion) ---

  // Submits body over grain-sized chunks of [0, count) and returns immediately.
  // Chunk k covers [k*grain, min(count, (k+1)*grain)); chunks are claimed in
  // index order, which is also the completion-stream ticket order. grain=0 maps
  // to 1. The returned stream must be retired with JoinStream exactly once.
  //
  // LIFETIME: Body is a non-owning view, and unlike the blocking calls this one
  // returns while chunks are still running — the callable must be an lvalue
  // that outlives JoinStream, never a temporary lambda in the argument list.
  Stream* BeginStream(std::size_t count, std::size_t grain, Body body);

  // Items [0, StreamReadyItems(s)) have completed — the contiguously-done chunk
  // prefix in ticket order. Lock-free acquire read; safe only for the thread
  // that owns the stream (single consumer).
  [[nodiscard]] std::size_t StreamReadyItems(const Stream* s) const;

  // Claims and runs ONE unclaimed chunk of `s` on the calling thread. Returns
  // false when every chunk is claimed (some may still be running elsewhere).
  // The consumer calls this while waiting for its next ticket, so the stream
  // completes even when every pool worker is busy with other streams.
  bool HelpStream(Stream* s);

  // Blocks until every chunk of `s` completed, retires the stream, and rethrows
  // the first captured body exception.
  void JoinStream(Stream* s);

 private:
  void WorkerLoop(std::size_t worker_id);
  // Claims one unit of work from `s` (caller holds mu_); returns false if the
  // stream has no unclaimed work. `stripe` is the claimant's home stripe.
  bool ClaimLocked(Stream* s, std::size_t stripe, std::size_t* begin, std::size_t* end);
  // Runs one claimed unit outside the lock and records its completion.
  void RunUnit(Stream* s, std::size_t begin, std::size_t end);
  [[nodiscard]] bool AnyUnclaimedLocked() const;
  Stream* Submit(std::size_t count, std::size_t grain, bool striped, Body body, bool track_completion);
  // Drains `s` on the caller (claim-and-run until nothing unclaimed), waits for
  // stragglers, retires the stream, rethrows the first captured error.
  void DrainAndJoin(Stream* s, std::size_t stripe);

  std::vector<std::thread> workers_;
  mutable std::mutex mu_;
  std::condition_variable work_ready_;
  std::condition_variable stream_done_;
  // Live streams in submission order (workers scan front-to-back), the free
  // list of recycled records, and the arena owning them all.
  std::deque<Stream*> live_;
  std::vector<Stream*> free_;
  std::vector<std::unique_ptr<Stream>> all_;
  bool shutdown_ = false;
};

}  // namespace vusion::host

#endif  // VUSION_SRC_HOST_THREAD_POOL_H_
