// Savestate round-trip cost (DESIGN.md §13): how long does it take to save,
// restore, and verify a warmed-up (Machine, engine) pair, and how big is the
// image? Reported per engine so checkpoint-heavy users (chaos_fuzz
// --snapshot-interval, fleet fan-out) can budget for it. Also asserts the
// restore→resave idempotence bit, so a schema drift that silently breaks
// parity fails the bench rather than only the tier-1 tests.

#include <chrono>
#include <cstdio>
#include <string>

#include "src/chaos/fuzz_campaign.h"
#include "src/fusion/engine_factory.h"
#include "src/kernel/process.h"
#include "src/snapshot/machine_snapshot.h"
#include "bench/bench_common.h"

namespace vusion {
namespace {

constexpr std::size_t kProcesses = 4;
constexpr std::size_t kPagesPerProcess = 256;
constexpr int kWarmupSteps = 400;
constexpr int kRepeats = 5;

double MsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                   start)
      .count();
}

// A warmed-up machine: duplicate-heavy pages plus a seeded write/read/idle mix
// so the saved image carries real fusion trees, traces, and metrics.
std::string BuildImage(EngineKind kind, double* save_ms) {
  MachineConfig machine_config;
  machine_config.frame_count = 1u << 15;
  machine_config.seed = 42;
  Machine machine(machine_config);
  FusionConfig fusion;
  fusion.wake_period = 1 * kMillisecond;
  fusion.pages_per_wake = 256;
  fusion.pool_frames = 2048;
  fusion.wpf_period = 10 * kMillisecond;
  std::unique_ptr<FusionEngine> engine = MakeEngineExact(kind, machine, fusion);
  engine->Install();

  std::vector<VirtAddr> bases;
  for (std::size_t p = 0; p < kProcesses; ++p) {
    Process& proc = machine.CreateProcess();
    const VirtAddr base =
        proc.AllocateRegion(kPagesPerProcess, PageType::kAnonymous, true, false);
    bases.push_back(base);
    for (std::size_t i = 0; i < kPagesPerProcess; ++i) {
      proc.SetupMapPattern(VaddrToVpn(base) + i, 0x7000 + (i % 32));
    }
  }
  Rng rng(7);
  const auto& procs = machine.processes();
  for (int step = 0; step < kWarmupSteps; ++step) {
    const std::size_t p = rng.NextBelow(bases.size());
    Process& proc = *procs[p];
    const VirtAddr addr = bases[p] + rng.NextBelow(kPagesPerProcess) * kPageSize +
                          rng.NextBelow(kPageSize / 8) * 8;
    switch (rng.NextBelow(4)) {
      case 0:
        proc.Write64(addr, rng.Next());
        break;
      case 1:
        (void)proc.Read64(addr);
        break;
      case 2:
        machine.Idle(rng.NextInRange(1, 4) * kMillisecond);
        break;
      default:
        proc.Write64(addr, 0);
        break;
    }
  }
  machine.Idle(50 * kMillisecond);

  std::string image;
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < kRepeats; ++i) {
    image = snapshot::SaveSnapshot(machine, engine.get(), kind);
  }
  *save_ms = MsSince(start) / kRepeats;
  engine->Uninstall();
  return image;
}

void Run() {
  bench::Reporter reporter("snapshot_roundtrip");
  reporter.Header("Savestate round-trip: save / restore / verify cost and image size");
  std::printf("%-8s %12s %10s %12s %11s %8s\n", "engine", "bytes", "save_ms",
              "restore_ms", "verify_ms", "resave");

  const EngineKind kinds[] = {EngineKind::kKsm, EngineKind::kWpf, EngineKind::kVUsion};
  for (const EngineKind kind : kinds) {
    double save_ms = 0.0;
    const std::string image = BuildImage(kind, &save_ms);

    const auto verify_start = std::chrono::steady_clock::now();
    for (int i = 0; i < kRepeats; ++i) {
      snapshot::VerifySnapshot(image);
    }
    const double verify_ms = MsSince(verify_start) / kRepeats;

    // Restore includes engine re-install and the invariant-auditor gate —
    // that is the cost a chaos replay or fan-out actually pays.
    const auto restore_start = std::chrono::steady_clock::now();
    bool resave_identical = true;
    for (int i = 0; i < kRepeats; ++i) {
      snapshot::RestoredMachine restored = snapshot::RestoreSnapshot(image);
      if (i == 0) {
        resave_identical =
            snapshot::SaveSnapshot(*restored.machine, restored.engine.get(),
                                   restored.kind) == image;
      }
    }
    // First iteration also paid one resave; amortized noise at kRepeats=5.
    const double restore_ms = MsSince(restore_start) / kRepeats;

    const char* token = CampaignEngineToken(kind);
    std::printf("%-8s %12zu %10.3f %12.3f %11.3f %8s\n", token, image.size(),
                save_ms, restore_ms, verify_ms, resave_identical ? "ok" : "DIFF");
    reporter.AddRow("roundtrip",
                    {{"engine", token},
                     {"bytes", static_cast<double>(image.size())},
                     {"save_ms", save_ms},
                     {"restore_ms", restore_ms},
                     {"verify_ms", verify_ms},
                     {"save_mb_s", image.size() / 1e3 / (save_ms > 0 ? save_ms : 1e-9)},
                     {"resave_identical", resave_identical}});

    const snapshot::SnapshotInfo info = snapshot::InspectSnapshot(image);
    for (const auto& section : info.sections) {
      reporter.AddRow("sections", {{"engine", token},
                                   {"name", section.name},
                                   {"bytes", static_cast<double>(section.size)}});
    }
    if (!resave_identical) {
      std::printf("ERROR: restore→resave is not idempotent for %s\n", token);
      std::exit(1);
    }
  }
  std::printf("\nrestore_ms includes engine re-install and the invariant-auditor gate.\n");
}

}  // namespace
}  // namespace vusion

int main() {
  vusion::Run();
  return 0;
}
