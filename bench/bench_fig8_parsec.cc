// Figure 8: performance overhead on the PARSEC-style suite (paper: KSM 1.7%,
// VUsion +0.5%, VUsion-THP improves on KSM by 1.4%).

#include <cstdio>
#include <map>
#include <vector>

#include "src/sim/stats.h"
#include "src/workload/parsec_workload.h"
#include "bench/bench_common.h"

namespace vusion {
namespace {

void Run() {
  bench::Reporter reporter("fig8_parsec");
  reporter.Header("Figure 8: PARSEC overhead vs no-dedup (%)");
  DescribeEval(reporter, EngineKind::kVUsion);
  std::map<EngineKind, std::vector<double>> runtime;
  for (const EngineKind kind : EvalEngines()) {
    Scenario scenario(EvalScenario(kind));
    for (int i = 0; i < 3; ++i) {
      scenario.BootVm(EvalImage(), 10 + i);
    }
    std::vector<std::pair<Process*, SpecWorkload::Prepared>> prepared;
    for (const SyntheticBenchmark& bench : ParsecWorkload::Suite()) {
      Process& proc = scenario.machine().CreateProcess();
      prepared.emplace_back(&proc, SpecWorkload::Prepare(proc, bench));
    }
    scenario.RunFor(60 * kSecond);
    Rng rng(23);
    for (auto& [proc, prep] : prepared) {
      runtime[kind].push_back(static_cast<double>(SpecWorkload::Run(*proc, prep, rng)));
    }
    reporter.AddMetrics(EngineKindName(kind), scenario.CollectMetrics());
  }
  const auto suite = ParsecWorkload::Suite();
  std::printf("%-14s %-12s %-12s %-12s\n", "benchmark", "KSM %", "VUsion %",
              "VUsion-THP %");
  std::map<EngineKind, std::vector<double>> ratios;
  for (std::size_t b = 0; b < suite.size(); ++b) {
    const double base = runtime[EngineKind::kNone][b];
    std::printf("%-14s", suite[b].name);
    Json row = Json::Object();
    row.Set("benchmark", suite[b].name);
    for (const EngineKind kind :
         {EngineKind::kKsm, EngineKind::kVUsion, EngineKind::kVUsionThp}) {
      const double overhead = 100.0 * (runtime[kind][b] - base) / base;
      ratios[kind].push_back(runtime[kind][b] / base);
      std::printf(" %-12.2f", overhead);
      row.Set(std::string(EngineKindName(kind)) + "_overhead_pct", overhead);
    }
    reporter.AddRow("overhead", std::move(row));
    std::printf("\n");
  }
  std::printf("%-14s", "geomean");
  Json geomean = Json::Object();
  geomean.Set("benchmark", "geomean");
  for (const EngineKind kind :
       {EngineKind::kKsm, EngineKind::kVUsion, EngineKind::kVUsionThp}) {
    const double overhead = 100.0 * (GeometricMean(ratios[kind]) - 1.0);
    std::printf(" %-12.2f", overhead);
    geomean.Set(std::string(EngineKindName(kind)) + "_overhead_pct", overhead);
  }
  reporter.AddRow("overhead", std::move(geomean));
  std::printf("\n\npaper: geomean KSM 1.7%%, VUsion 2.2%%, VUsion THP 0.8%% (absolute)\n");
}

}  // namespace
}  // namespace vusion

int main() {
  vusion::Run();
  return 0;
}
