# Empty compiler generated dependencies file for wpf_test.
# This may be replaced when dependencies are built.
