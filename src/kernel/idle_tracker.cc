#include "src/kernel/idle_tracker.h"

namespace vusion {

bool IdleTracker::TestAndClearAccessed(AddressSpace& as, Vpn vpn) {
  Pte* pte = as.GetPte(vpn);
  if (pte == nullptr || pte->flags == 0) {
    return false;
  }
  const bool accessed = pte->accessed();
  if (accessed) {
    as.UpdateFlags(vpn, 0, kPteAccessed);
  }
  return accessed;
}

bool IdleTracker::IsAccessed(const AddressSpace& as, Vpn vpn) {
  const Pte* pte = as.GetPte(vpn);
  return pte != nullptr && pte->accessed();
}

}  // namespace vusion
