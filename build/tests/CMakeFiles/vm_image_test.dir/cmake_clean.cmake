file(REMOVE_RECURSE
  "CMakeFiles/vm_image_test.dir/vm_image_test.cc.o"
  "CMakeFiles/vm_image_test.dir/vm_image_test.cc.o.d"
  "vm_image_test"
  "vm_image_test.pdb"
  "vm_image_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vm_image_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
