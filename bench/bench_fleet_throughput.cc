// Fleet-scale stepping throughput: aggregate host pages/sec when one host
// steps a >= 16-Machine fleet under the shared virtual clock, swept over fleet
// thread counts. The sweep proves two things at once: (1) the scheduling win —
// aggregate pages/sec scales with host threads (measured when the host has the
// cores, otherwise projected from per-quantum critical paths, exactly like
// bench_host_throughput's thread sweep); (2) the determinism contract — every
// Machine's simulated outcome is bit-identical at every thread count, enforced
// with a hard exit. The artifact also reports the per-Machine resident
// overhead from Fleet::CollectFootprint (lazy LLC/trace/content allocation
// keeps a booted, scanning Machine at roughly its frame table) and the fleet
// metrics rollup with machine-id labels.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "bench/bench_common.h"
#include "src/fleet/fleet.h"

namespace vusion {
namespace {

// Tunables (adjusted by --quick for the CI regression gate).
int g_repeats = 2;                     // best-of timing repeats per thread count
SimTime g_run_time = 2 * kSecond;      // simulated window per run
std::vector<std::size_t> g_threads = {1, 2, 4, 8};

constexpr std::size_t kMachines = 16;  // acceptance floor: >= 16-Machine fleet
constexpr std::size_t kVmsPerMachine = 2;
constexpr std::size_t kGuestPages = 1024;  // 4 MB guests
constexpr SimTime kQuantum = 5 * kMillisecond;

// Per-machine churn workload: a third process on every Machine whose pages are
// rewritten every quantum, with the rewrite count drawn from a per-(machine,
// quantum) hash — so siblings run the same software but different dynamics,
// and the per-Machine variance table below has real spread to report.
constexpr std::size_t kChurnPages = 512;
constexpr std::uint64_t kChurnSeed = 0xc0ffee;
constexpr std::size_t kTailOffset = kPageSize - 8;
constexpr std::size_t kDuplicateGroups = 64;

std::uint64_t Mix(std::uint64_t a, std::uint64_t b) {
  std::uint64_t x = a * 0x9e3779b97f4a7c15ull ^ b;
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 27;
  return x;
}

fleet::FleetConfig BenchFleetConfig(std::size_t fleet_threads, bool streaming = true) {
  fleet::FleetConfig config;
  config.machine_count = kMachines;
  config.host_threads = fleet_threads;
  config.quantum = kQuantum;
  config.vms_per_machine = kVmsPerMachine;
  config.scenario.engine = EngineKind::kVUsion;
  config.scenario.machine.frame_count = 1u << 13;  // 32 MB host per Machine
  config.scenario.fusion.wake_period = 1 * kMillisecond;
  config.scenario.fusion.pages_per_wake = 256;
  config.scenario.fusion.pool_frames = 512;
  config.scenario.fusion.scan_streaming = streaming;
  VmImageSpec base;
  base.total_pages = kGuestPages;
  VmImageSpec variant = base;
  variant.stack_seed = 7;  // second image: different stack, same layout
  config.images = {base, variant};
  return config;
}

// Everything simulated a Machine produces in a run; compared across thread
// counts (and repeats) to enforce the fleet determinism contract.
struct MachineOutcome {
  std::uint64_t pages_scanned = 0;
  std::uint64_t merges = 0;
  std::uint64_t unmerges = 0;  // CoW + CoA
  std::uint64_t zero_page_merges = 0;
  std::uint64_t frames_saved = 0;
  std::uint64_t consumed_frames = 0;
  SimTime final_time = 0;

  bool operator==(const MachineOutcome& other) const {
    return std::tie(pages_scanned, merges, unmerges, zero_page_merges, frames_saved,
                    consumed_frames, final_time) ==
           std::tie(other.pages_scanned, other.merges, other.unmerges,
                    other.zero_page_merges, other.frames_saved, other.consumed_frames,
                    other.final_time);
  }
};

struct RunResult {
  std::size_t threads = 0;
  std::vector<MachineOutcome> outcomes;       // one per Machine, id order
  double wall_seconds = 0.0;                  // best (min) over repeats
  double projected_seconds = 0.0;             // serial-costs projection at `threads`
  std::uint64_t total_pages = 0;              // sum of pages_scanned over Machines
  std::uint64_t total_merges = 0;
  MetricsSnapshot metrics;                    // machine-labeled rollup (first repeat)
  // Captured from the serial (threads=1) run only:
  std::vector<fleet::Fleet::QuantumCost> quantum_costs;
  fleet::Fleet::FootprintSummary footprint;
};

RunResult RunFleet(std::size_t fleet_threads, bool streaming = true) {
  RunResult result;
  result.threads = fleet_threads;
  for (int repeat = 0; repeat < g_repeats; ++repeat) {
    fleet::Fleet fleet(BenchFleetConfig(fleet_threads, streaming));
    fleet.BootAll();

    // Per-machine churn process: identical setup everywhere (deterministic,
    // pre-run, serial), then per-quantum rewrites whose count and targets are
    // hashed from (machine, quantum) — machine-local state only, so the fleet
    // determinism contract holds at any thread count.
    struct Churn {
      Process* vm = nullptr;
      VirtAddr base = 0;
      std::uint64_t quantum = 0;
    };
    std::vector<Churn> churn(fleet.size());
    for (std::size_t m = 0; m < fleet.size(); ++m) {
      Process& vm = fleet.member(m).machine().CreateProcess();
      const VirtAddr base = vm.AllocateRegion(kChurnPages, PageType::kAnonymous, true, false);
      for (std::size_t i = 0; i < kChurnPages; ++i) {
        vm.SetupMapPattern(VaddrToVpn(base) + i, kChurnSeed);
        // 1/4 intra-machine duplicates (fusion fodder); the rest unique.
        const std::uint64_t tag = i % 4 == 0 ? 0x1000000 + i % kDuplicateGroups
                                             : 0x2000000 + (static_cast<std::uint64_t>(m) << 32) + i;
        vm.Write64(base + i * kPageSize + kTailOffset, tag);
      }
      churn[m] = {&vm, base, 0};
    }
    fleet.SetQuantumHook([&churn](std::size_t m, Scenario&) {
      Churn& c = churn[m];
      const std::uint64_t writes = 16 + Mix(m, c.quantum) % 48;
      for (std::uint64_t w = 0; w < writes; ++w) {
        const std::size_t page = Mix(m ^ 0xfeedull, c.quantum * 131 + w) % kChurnPages;
        c.vm->Write64(c.base + page * kPageSize + kTailOffset,
                      0x3000000 + Mix(c.quantum, page));
      }
      ++c.quantum;
    });

    const auto start = std::chrono::steady_clock::now();
    fleet.RunFor(g_run_time);
    const double wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();

    std::vector<MachineOutcome> outcomes(fleet.size());
    for (std::size_t m = 0; m < fleet.size(); ++m) {
      Scenario& member = fleet.member(m);
      const FusionStats& stats = member.engine()->stats();
      outcomes[m].pages_scanned = stats.pages_scanned;
      outcomes[m].merges = stats.merges;
      outcomes[m].unmerges = stats.unmerges_cow + stats.unmerges_coa;
      outcomes[m].zero_page_merges = stats.zero_page_merges;
      outcomes[m].frames_saved = member.engine()->frames_saved();
      outcomes[m].consumed_frames = member.consumed_frames();
      outcomes[m].final_time = member.machine().clock().now();
    }
    if (repeat == 0) {
      result.outcomes = std::move(outcomes);
      result.wall_seconds = wall_seconds;
      // The metrics rollup rides along on every config (the conflict-rate table
      // reads it from the wide streaming run); the serial-cost artifacts stay
      // threads=1 only.
      result.metrics = fleet.CollectMetrics();
      if (fleet_threads == 1) {
        result.quantum_costs = fleet.quantum_costs();
        result.footprint = fleet.CollectFootprint();
      }
    } else {
      if (!(outcomes == result.outcomes)) {
        std::fprintf(stderr,
                     "FATAL: fleet simulated outcome differs between repeats at threads=%zu\n",
                     fleet_threads);
        std::exit(1);
      }
      result.wall_seconds = std::min(result.wall_seconds, wall_seconds);
    }
  }
  for (const MachineOutcome& o : result.outcomes) {
    result.total_pages += o.pages_scanned;
    result.total_merges += o.merges;
  }
  return result;
}

double ProjectedSeconds(const std::vector<fleet::Fleet::QuantumCost>& costs,
                        std::size_t threads) {
  // Mirror of Fleet::ProjectedRuntimeNs, applied to the serial run's costs:
  // each quantum's critical path under T threads is the slower of perfect
  // division and the single slowest Machine (the barrier waits for it).
  const double t = static_cast<double>(std::max<std::size_t>(1, threads));
  double total_ns = 0.0;
  for (const fleet::Fleet::QuantumCost& q : costs) {
    total_ns += std::max(static_cast<double>(q.sum_ns) / t, static_cast<double>(q.max_ns));
  }
  return total_ns / 1e9;
}

struct VarianceRow {
  const char* stat;
  double min = 0.0;
  double mean = 0.0;
  double max = 0.0;
  double stddev = 0.0;
};

VarianceRow Variance(const char* stat, const std::vector<double>& values) {
  VarianceRow row;
  row.stat = stat;
  if (values.empty()) {
    return row;
  }
  row.min = *std::min_element(values.begin(), values.end());
  row.max = *std::max_element(values.begin(), values.end());
  double sum = 0.0;
  for (const double v : values) {
    sum += v;
  }
  row.mean = sum / static_cast<double>(values.size());
  double sq = 0.0;
  for (const double v : values) {
    sq += (v - row.mean) * (v - row.mean);
  }
  row.stddev = std::sqrt(sq / static_cast<double>(values.size()));
  return row;
}

void Run() {
  bench::Reporter reporter("fleet_throughput");
  reporter.Header("Fleet stepping throughput: one host, many Machines, one clock");

  const unsigned host_cpus = std::max(1u, std::thread::hardware_concurrency());
  const std::size_t max_threads = *std::max_element(g_threads.begin(), g_threads.end());
  const bool measured_basis = host_cpus >= max_threads;
  const char* basis = measured_basis ? "measured" : "projected";

  {
    Json config = Json::Object();
    config.Set("machines", kMachines);
    config.Set("vms_per_machine", kVmsPerMachine);
    config.Set("guest_pages", kGuestPages);
    config.Set("quantum_ms", kQuantum / kMillisecond);
    config.Set("run_ms", g_run_time / kMillisecond);
    config.Set("repeats", g_repeats);
    config.Set("host_cpus", host_cpus);
    config.Set("basis", basis);
    reporter.SetConfig("fleet", std::move(config));
    reporter.SetConfig("scenario", Describe(BenchFleetConfig(1).scenario));
  }

  std::printf("fleet: %zu machines x %zu VMs, %llu ms simulated, quantum %llu ms, "
              "host has %u cpu%s (%s basis)\n\n",
              kMachines, kVmsPerMachine,
              static_cast<unsigned long long>(g_run_time / kMillisecond),
              static_cast<unsigned long long>(kQuantum / kMillisecond), host_cpus,
              host_cpus == 1 ? "" : "s", basis);
  std::printf("%8s %12s %10s %12s %10s %12s\n", "threads", "pages", "wall(s)", "meas pg/s",
              "proj(s)", "proj pg/s");

  std::vector<RunResult> runs;
  for (const std::size_t threads : g_threads) {
    RunResult r = RunFleet(threads);
    if (!runs.empty() && !(r.outcomes == runs.front().outcomes)) {
      std::fprintf(stderr,
                   "FATAL: fleet simulated outcome differs between threads=%zu and threads=%zu\n",
                   runs.front().threads, r.threads);
      std::exit(1);
    }
    runs.push_back(std::move(r));
  }
  std::printf("  (simulated outcome bit-identical across all fleet thread counts)\n");

  const std::vector<fleet::Fleet::QuantumCost>& serial_costs = runs.front().quantum_costs;
  for (RunResult& r : runs) {
    r.projected_seconds = ProjectedSeconds(serial_costs, r.threads);
  }
  // Reprint rows now that projections exist (keeps the loop above simple).
  for (const RunResult& r : runs) {
    const double meas_pps =
        r.wall_seconds > 0 ? static_cast<double>(r.total_pages) / r.wall_seconds : 0.0;
    const double proj_pps =
        r.projected_seconds > 0 ? static_cast<double>(r.total_pages) / r.projected_seconds : 0.0;
    std::printf("%8zu %12llu %10.3f %12.0f %10.3f %12.0f\n", r.threads,
                static_cast<unsigned long long>(r.total_pages), r.wall_seconds, meas_pps,
                r.projected_seconds, proj_pps);
    reporter.AddRow("runs", {{"threads", r.threads},
                             {"pages_scanned", r.total_pages},
                             {"merges", r.total_merges},
                             {"wall_seconds", r.wall_seconds},
                             {"pages_per_second", meas_pps},
                             {"projected_seconds", r.projected_seconds},
                             {"projected_pages_per_second", proj_pps}});
    reporter.AddTiming("threads_" + std::to_string(r.threads) + "_wall",
                       r.wall_seconds * 1e3);
  }

  // --- Scaling vs the 1-thread reference. ---
  std::printf("\naggregate stepping speedup vs 1 fleet thread (%s basis):\n ", basis);
  double speedup_4t = 0.0;
  for (const RunResult& r : runs) {
    const double base = measured_basis ? runs.front().wall_seconds : runs.front().projected_seconds;
    const double mine = measured_basis ? r.wall_seconds : r.projected_seconds;
    const double speedup = mine > 0 ? base / mine : 0.0;
    if (r.threads == 4) {
      speedup_4t = speedup;
    }
    std::printf("  %zut=%.2fx", r.threads, speedup);
    reporter.AddRow("fleet_speedup", {{"threads", r.threads}, {"speedup", speedup}});
  }
  std::printf("\n\nheadline: 4-thread fleet stepping speedup %.2fx (%s, target >= 3x)\n",
              speedup_4t, basis);
  reporter.AddRow("headlines", {{"name", "fleet_parallel_speedup_4t"},
                                {"value", speedup_4t},
                                {"target", 3.0},
                                {"basis", basis}});

  // --- Streaming vs barrier scan pipeline at the widest sweep point. ---
  // Same fleet thread count, scan_streaming off: workers re-join the full
  // phase-1 barrier inside every Machine's quantum. Simulated outcomes must
  // stay bit-identical (the determinism fence); the wall-clock ratio is the
  // intra-quantum overlap recovered by streaming. Always measured — the serial
  // critical-path projection cannot see inside a quantum.
  {
    const RunResult& wide = runs.back();
    const RunResult barrier = RunFleet(max_threads, /*streaming=*/false);
    if (!(barrier.outcomes == wide.outcomes)) {
      std::fprintf(stderr,
                   "FATAL: fleet simulated outcome differs between streaming and barrier "
                   "pipelines at threads=%zu\n",
                   max_threads);
      std::exit(1);
    }
    const double streaming_speedup =
        wide.wall_seconds > 0 ? barrier.wall_seconds / wide.wall_seconds : 0.0;
    std::printf("\nstreaming vs barrier scan pipeline at %zu fleet threads: "
                "%.3fs -> %.3fs (%.2fx, measured)\n",
                max_threads, barrier.wall_seconds, wide.wall_seconds, streaming_speedup);
    reporter.AddRow("streaming_speedup", {{"threads", max_threads},
                                          {"barrier_wall_seconds", barrier.wall_seconds},
                                          {"streaming_wall_seconds", wide.wall_seconds},
                                          {"speedup", streaming_speedup}});
    reporter.AddRow("headlines", {{"name", "fleet_streaming_speedup"},
                                  {"value", streaming_speedup},
                                  {"target", 1.0},
                                  {"basis", "measured"}});

    // Per-Machine conflict rate vs churn: speculative hashes invalidated by a
    // merge mutating a not-yet-consumed frame, against that Machine's merge
    // count (the churn proxy). Host-side observability only — rates vary with
    // interleaving; the sim outcome above already proved they never leak.
    std::uint64_t total_hashes = 0;
    std::uint64_t total_stale = 0;
    for (std::size_t m = 0; m < wide.outcomes.size(); ++m) {
      const MetricLabels labels = {{"machine", std::to_string(m)}};
      const std::uint64_t hashes = wide.metrics.CounterValue("scan.speculative_hashes", labels);
      const std::uint64_t stale = wide.metrics.CounterValue("scan.speculative_stale", labels);
      total_hashes += hashes;
      total_stale += stale;
      reporter.AddRow("conflict_rate",
                      {{"machine", m},
                       {"speculative_hashes", hashes},
                       {"speculative_stale", stale},
                       {"stale_rate", hashes > 0 ? static_cast<double>(stale) /
                                                       static_cast<double>(hashes)
                                                 : 0.0},
                       {"merges", wide.outcomes[m].merges}});
    }
    std::printf("speculative-hash conflicts across the fleet: %llu stale of %llu "
                "(%.3f%% re-resolved inline on the merge thread)\n",
                static_cast<unsigned long long>(total_stale),
                static_cast<unsigned long long>(total_hashes),
                total_hashes > 0
                    ? 100.0 * static_cast<double>(total_stale) / static_cast<double>(total_hashes)
                    : 0.0);
  }

  // --- Per-Machine variance: same images, per-Machine RNG streams. ---
  const RunResult& serial = runs.front();
  std::vector<double> pages, merges, unmerges, saved;
  pages.reserve(serial.outcomes.size());
  merges.reserve(serial.outcomes.size());
  unmerges.reserve(serial.outcomes.size());
  saved.reserve(serial.outcomes.size());
  for (const MachineOutcome& o : serial.outcomes) {
    pages.push_back(static_cast<double>(o.pages_scanned));
    merges.push_back(static_cast<double>(o.merges));
    unmerges.push_back(static_cast<double>(o.unmerges));
    saved.push_back(static_cast<double>(o.frames_saved));
  }
  std::printf("\nper-Machine variance over %zu machines (min / mean / max, stddev):\n",
              serial.outcomes.size());
  for (const VarianceRow& row : {Variance("pages_scanned", pages), Variance("merges", merges),
                                 Variance("unmerges", unmerges),
                                 Variance("frames_saved", saved)}) {
    std::printf("  %-14s %10.0f / %10.1f / %10.0f   sd %.1f\n", row.stat, row.min, row.mean,
                row.max, row.stddev);
    reporter.AddRow("machine_variance", {{"stat", row.stat},
                                         {"min", row.min},
                                         {"mean", row.mean},
                                         {"max", row.max},
                                         {"stddev", row.stddev}});
  }

  // --- Per-Machine resident overhead (the frugality acceptance criterion). ---
  const fleet::Fleet::FootprintSummary& fp = serial.footprint;
  std::printf("\nresident footprint after the run: %.2f MB total, %.0f KB mean / %zu KB max "
              "per Machine, %zu KB shared templates\n",
              static_cast<double>(fp.total_bytes) / (1024.0 * 1024.0),
              fp.mean_machine_bytes() / 1024.0, fp.max_machine_bytes / 1024, fp.template_bytes / 1024);
  reporter.AddRow("footprint", {{"machines", fp.machines},
                                {"total_bytes", fp.total_bytes},
                                {"mean_machine_bytes", fp.mean_machine_bytes()},
                                {"max_machine_bytes", fp.max_machine_bytes},
                                {"template_bytes", fp.template_bytes}});
  reporter.AddMetrics("fleet", serial.metrics);

  const std::string path = reporter.WriteJson();
  if (!path.empty()) {
    std::printf("wrote %s\n", path.c_str());
  }
}

void ParseArgs(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      // CI regression gate: one repeat over a short simulated window. The
      // thread sweep keeps its full shape so bench_diff can match every
      // fleet_speedup row against the committed full-run baseline; speedup
      // ratios survive the shrink, raw counts don't.
      g_repeats = 1;
      g_run_time = 500 * kMillisecond;
    }
  }
}

}  // namespace
}  // namespace vusion

int main(int argc, char** argv) {
  // The sweep pins its own thread counts and scan modes; environment overrides
  // would silently skew every run the same way and hide scaling.
  ::unsetenv("VUSION_FLEET_THREADS");
  ::unsetenv("VUSION_SCAN_THREADS");
  ::unsetenv("VUSION_DELTA_SCAN");
  ::unsetenv("VUSION_SCAN_STREAMING");
  ::unsetenv("VUSION_SCAN_CHUNK");
  vusion::ParseArgs(argc, argv);
  vusion::Run();
  return 0;
}
