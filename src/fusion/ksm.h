// Linux Kernel Same-page Merging model (paper §2.1), including the properties the
// attacks exploit:
//  - the merged copy is backed by one of the sharing parties' frames (Flip Feng
//    Shui's memory-massaging primitive),
//  - unstable-tree pages are not write-protected while stable pages are (a
//    merge-detection channel),
//  - unmerge is a copy-on-write fault measurably slower than a plain write.
//
// With FusionConfig::unmerge_on_any_access the engine becomes the "copy-on-access
// KSM" variant of the paper's Figure 4; with zero_pages_only it fuses only
// zero-content pages (the mitigation the paper shows is insufficient).

#ifndef VUSION_SRC_FUSION_KSM_H_
#define VUSION_SRC_FUSION_KSM_H_

#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/container/arena.h"
#include "src/container/rbtree.h"
#include "src/fusion/content.h"
#include "src/fusion/delta_scan.h"
#include "src/fusion/fusion_engine.h"

namespace vusion {

class Ksm final : public FusionEngine {
 public:
  Ksm(Machine& machine, const FusionConfig& config);
  ~Ksm() override;

  [[nodiscard]] const char* name() const override;
  [[nodiscard]] std::uint64_t frames_saved() const override { return frames_saved_; }

  // Daemon: scans pages_per_wake pages every wake_period.
  void Run() override;

  [[nodiscard]] const host::ScanTiming* scan_timing() const override { return &timing_; }

  // SharingPolicy.
  bool HandleFault(Process& process, const PageFault& fault) override;
  bool OnUnmap(Process& process, Vpn vpn) override;
  bool AllowCollapse(Process& process, Vpn base) override;
  bool PrepareCollapse(Process& /*process*/, Vpn /*base*/) override { return true; }
  void OnUnregister(Process& process, Vpn start, std::uint64_t pages) override;
  void OnProcessDestroy(Process& process) override;
  bool Owns(const Process& process, Vpn vpn) const override {
    return rmap_.contains(KeyOf(process, vpn));
  }

  [[nodiscard]] std::size_t stable_size() const { return stable_.size(); }
  [[nodiscard]] std::size_t unstable_size() const { return UnstableSize(); }
  [[nodiscard]] const DeltaPassCache& delta_cache() const { return delta_; }

  void ExportMetrics(MetricsRegistry& registry) const override;
  [[nodiscard]] bool ValidateTrees() const {
    return stable_.ValidateInvariants() && unstable_.ValidateInvariants();
  }
  // True if (process, vpn) is currently merged (test helper).
  [[nodiscard]] bool IsMerged(const Process& process, Vpn vpn) const;

  // Machine-wide consistency check: stable tree, rmap, checksum index, and the
  // kernel's refcounts/PTEs must all agree. See src/chaos/invariant_auditor.h.
  void AuditInvariants(AuditContext& ctx) const override;

 private:
  struct StableEntry;
  struct StableCompare {
    Ksm* ksm;
    int operator()(StableEntry* const& a, StableEntry* const& b) const;
  };
  // sort_hash is the frame's content hash at insert time and, in fingerprint
  // mode, the tree key (with the frame id as tie-break). Both keys are immutable,
  // so the unstable tree's shape is a pure function of the insert sequence — the
  // property that lets the delta scanner defer inserts (pending_unstable_) and
  // still materialize the exact tree a full scan would have built.
  struct UnstableItem {
    FrameId frame = kInvalidFrame;
    Process* process = nullptr;
    Vpn vpn = 0;
    std::uint64_t sort_hash = 0;
  };
  struct UnstableCompare {
    Ksm* ksm;
    int operator()(const UnstableItem& a, const UnstableItem& b) const;
  };
  using StableTree = RbTree<StableEntry*, StableCompare>;
  using UnstableTree = RbTree<UnstableItem, UnstableCompare>;

  struct StableEntry {
    FrameId frame = kInvalidFrame;
    std::uint32_t refs = 0;
    StableTree::Node* node = nullptr;
  };

  // Pass-cache entry kinds (DeltaPassCache::Entry::kind): the first conclusive
  // branch the full scan took for the page. See TryReplay for each kind's
  // validity guards and replayed effects.
  enum DeltaKind : std::uint8_t {
    kDeltaSkip = 1,        // PTE absent / not present / reserved trap
    kDeltaMerged = 2,      // rmap hit: page already merged
    kDeltaForkShared = 3,  // frame refcount > 0: kernel-owned CoW state
    kDeltaNotZero = 4,     // zero_pages_only mode, frame not zero
    kDeltaUnique = 5,      // full flow ended in the checksum-gate/insert tail
  };

  static std::uint64_t KeyOf(const Process& process, Vpn vpn) {
    return (static_cast<std::uint64_t>(process.id()) << 40) ^ vpn;
  }

  void ScanOne(Process& process, Vpn vpn);
  // Replays the memoized conclusion for (process, vpn) if its guards hold;
  // returns false (after dropping the entry) to fall back to the full scan.
  bool TryReplay(Process& process, Vpn vpn);
  void ScanOneFull(Process& process, Vpn vpn);
  // The unstable-tree lookup/match and checksum-gated insert shared verbatim by
  // the full scan and the kDeltaUnique replay (see DESIGN.md §10).
  void UniqueTail(Process& process, Vpn vpn, FrameId frame, std::uint64_t hash,
                  std::uint64_t epoch, bool replay);
  void RecordSimple(std::uint32_t pid, Vpn vpn, std::uint64_t epoch, std::uint8_t kind,
                    FrameId frame, std::uint64_t content_gen);
  void RecordUnique(std::uint32_t pid, Vpn vpn, std::uint64_t epoch, FrameId frame,
                    std::uint64_t hash);

  // --- Unstable-tree facade ---
  //
  // All unstable-tree access goes through these so the conceptual tree — real
  // nodes plus delta-deferred pending inserts — stays consistent with the
  // fingerprint multiset used for the Find fast-out, and so charged descend
  // costs (a function of conceptual size) are identical with delta on or off.
  [[nodiscard]] std::size_t UnstableSize() const {
    return unstable_.size() + pending_unstable_.size();
  }
  UnstableTree::Node* UnstableFind(std::uint64_t hash, FrameId frame);
  void UnstableInsert(UnstableItem item);
  void UnstableClear();
  void MaterializePending();
  void EraseFp(std::uint64_t hash);
  // The wake quantum's scan loop: serial reference (scan_threads<=1) or the
  // two-phase parallel pipeline. Both produce bit-identical simulated results.
  void ScanQuantumSerial();
  void ScanQuantumPipelined();
  // Invalidates batch items whose process a phase hook tore down mid-scan.
  void PruneDeadItems();
  // Promotes an unstable match to the stable tree (write-protecting it).
  StableEntry* Stabilize(const UnstableItem& item);
  // Points (process, vpn) at the entry's frame and releases its duplicate.
  void MergeInto(Process& process, Vpn vpn, StableEntry* entry);
  // Splits the huge mapping covering vpn, if any, charging the split cost.
  Pte* EnsureSmallMapping(Process& process, Vpn vpn);
  [[nodiscard]] bool UnstableStillValid(const UnstableItem& item) const;
  void DropRef(StableEntry* entry);
  // Gives (process, vpn) a private writable copy again (break_ksm/break_cow).
  bool BreakCow(Process& process, Vpn vpn, StableEntry* entry, std::uint16_t extra_flags);
  [[nodiscard]] std::uint16_t MergedFlags(std::uint16_t accessed_bit) const;

  ChargedContent content_;
  ScanCursor cursor_;
  host::ParallelScanPipeline pipeline_;
  host::ScanTiming timing_;
  std::vector<host::ScanItem> batch_;
  // Node storage for both trees; declared before them so it outlives their
  // destructors (members are destroyed in reverse declaration order).
  Arena arena_;
  StableTree stable_;
  UnstableTree unstable_;
  // Insert-time hashes of every conceptual unstable item (fingerprint mode
  // only). A probe hash absent here cannot match any node — sort_hash keys are
  // immutable — so UnstableFind skips the descent (and, under delta, skips
  // materializing the tree at all). Stored as a round-stamped open-addressed
  // table (linear probing, 16-byte slots): a slot counts only while its stamp
  // matches fps_round_, so the per-round clear is one round bump and the
  // steady-state insert re-stamps the slot the same hash claimed last round —
  // one cache line touched, nothing allocated. stamp 0 marks a never-used slot
  // (rounds start at 1); old-stamped slots are dead weight that FpGrow()
  // compacts away when they come to dominate the table.
  struct FpSlot {
    std::uint64_t hash = 0;
    std::uint64_t stamp = 0;
    std::uint32_t count = 0;
    std::uint32_t pad = 0;
  };
  [[nodiscard]] std::size_t FpIndex(std::uint64_t hash) const {
    return static_cast<std::size_t>(hash ^ (hash >> 32)) & fps_mask_;
  }
  [[nodiscard]] const FpSlot* FpFind(std::uint64_t hash) const;
  void FpGrow();
  std::vector<FpSlot> fps_slots_;  // power-of-2; lazily sized on first insert
  std::size_t fps_mask_ = 0;
  std::size_t fps_used_ = 0;  // slots with stamp != 0 (monotonic until FpGrow)
  std::uint64_t fps_round_ = 1;
  std::uint64_t fps_stamped_ = 0;  // distinct hashes stamped this round
  // Delta mode: inserts deferred until a probe could actually match (its hash is
  // in unstable_fps_). Always the suffix of the conceptual insert sequence, so
  // flushing in order rebuilds the exact reference tree shape.
  std::vector<UnstableItem> pending_unstable_;
  using RmapAlloc = ArenaStlAllocator<std::pair<const std::uint64_t, StableEntry*>>;
  std::unordered_map<std::uint64_t, StableEntry*, std::hash<std::uint64_t>,
                     std::equal_to<std::uint64_t>, RmapAlloc>
      rmap_;
  // Volatility gate, indexed per process so teardown drops a dead process's
  // checksums in O(its pages) instead of sweeping every tracked page.
  std::unordered_map<std::uint32_t, std::unordered_map<Vpn, std::uint64_t>> checksums_;
  std::uint64_t frames_saved_ = 0;
  // Bumped on every stable-tree membership change; with an unchanged version
  // (and no shared-frame content mutation) a recorded "no stable match" verdict
  // for an unchanged page is still exact, so the replay skips the stable Find.
  std::uint64_t stable_version_ = 0;
  DeltaPassCache delta_;
  bool delta_mode_ = false;
};

}  // namespace vusion

#endif  // VUSION_SRC_FUSION_KSM_H_
