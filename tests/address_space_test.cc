#include "src/mmu/address_space.h"

#include <gtest/gtest.h>

#include "src/phys/buddy_allocator.h"

namespace vusion {
namespace {

class AddressSpaceTest : public ::testing::Test {
 protected:
  AddressSpaceTest() : mem_(4096), buddy_(mem_), as_(1, buddy_, mem_) {}

  PhysicalMemory mem_;
  BuddyAllocator buddy_;
  AddressSpace as_;
};

TEST_F(AddressSpaceTest, MapUnmap) {
  as_.MapPage(0x100, 42, kPtePresent | kPteWritable);
  ASSERT_NE(as_.GetPte(0x100), nullptr);
  EXPECT_EQ(as_.GetPte(0x100)->frame, 42u);
  as_.UnmapPage(0x100);
  EXPECT_EQ(as_.GetPte(0x100)->flags, 0);
}

TEST_F(AddressSpaceTest, UpdateFlagsSetAndClear) {
  as_.MapPage(0x100, 1, kPtePresent | kPteWritable);
  EXPECT_TRUE(as_.UpdateFlags(0x100, kPteAccessed, kPteWritable));
  const Pte* pte = as_.GetPte(0x100);
  EXPECT_TRUE(pte->accessed());
  EXPECT_FALSE(pte->writable());
  EXPECT_FALSE(as_.UpdateFlags(0x999, kPteAccessed, 0));  // unmapped
}

TEST_F(AddressSpaceTest, PteModificationInvalidatesTlb) {
  as_.MapPage(0x100, 1, kPtePresent);
  as_.tlb().Insert(0x100, *as_.GetPte(0x100));
  ASSERT_TRUE(as_.tlb().Lookup(0x100).has_value());
  as_.UpdateFlags(0x100, kPteReserved, 0);
  EXPECT_FALSE(as_.tlb().Lookup(0x100).has_value());  // shootdown modeled
}

TEST_F(AddressSpaceTest, HugeMappingLifecycle) {
  const FrameId block = buddy_.AllocateOrder(kHugePageOrder);
  as_.MapHugeRange(0x200, block, kPtePresent | kPteWritable);
  EXPECT_TRUE(as_.IsHuge(0x200 + 17));
  ASSERT_TRUE(as_.SplitHuge(0x200 + 17));
  EXPECT_FALSE(as_.IsHuge(0x200 + 17));
  EXPECT_EQ(as_.GetPte(0x200 + 17)->frame, block + 17);
  // Collapse back.
  const FrameId block2 = buddy_.AllocateOrder(kHugePageOrder);
  as_.CollapseToHuge(0x200, block2, kPtePresent | kPteWritable);
  EXPECT_TRUE(as_.IsHuge(0x200));
  EXPECT_EQ(as_.GetPte(0x200)->frame, block2);
}

TEST_F(AddressSpaceTest, VmaRegistrationAndMadvise) {
  as_.AddVma(VmArea{0x100, 64, false, false, PageType::kAnonymous});
  as_.AddVma(VmArea{0x400, 32, false, false, PageType::kPageCache});
  EXPECT_EQ(as_.vmas().total_pages(), 96u);
  EXPECT_EQ(as_.vmas().mergeable_pages(), 0u);
  as_.MadviseMergeable(0x110, 8);  // overlaps only the first VMA
  EXPECT_EQ(as_.vmas().mergeable_pages(), 64u);
  const VmArea* vma = as_.vmas().FindContaining(0x120);
  ASSERT_NE(vma, nullptr);
  EXPECT_TRUE(vma->mergeable);
  EXPECT_EQ(as_.vmas().FindContaining(0x200), nullptr);
  EXPECT_EQ(as_.vmas().FindContaining(0x400 + 31)->type, PageType::kPageCache);
  EXPECT_EQ(as_.vmas().FindContaining(0x400 + 32), nullptr);  // end exclusive
}

TEST_F(AddressSpaceTest, PageTypeNames) {
  EXPECT_STREQ(PageTypeName(PageType::kPageCache), "page cache");
  EXPECT_STREQ(PageTypeName(PageType::kGuestBuddy), "buddy");
  EXPECT_STREQ(PageTypeName(PageType::kGuestKernel), "kernel");
  EXPECT_STREQ(PageTypeName(PageType::kAnonymous), "anonymous");
}

}  // namespace
}  // namespace vusion
