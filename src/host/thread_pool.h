// Fixed-size host worker pool for the parallel scan pipeline.
//
// This is HOST-side machinery only: it parallelizes the simulator's own wall-clock
// work and must never touch simulated state (VirtualClock, Rng, LatencyModel,
// TraceBuffer, FusionStats) — those are single-threaded by contract; see DESIGN.md,
// "Parallel host, serial sim".
//
// Dispatch model: ParallelFor splits [0, count) into fixed-size chunks handed out
// from a shared cursor under the pool mutex (dynamic load balancing), the calling
// thread participates as a worker, and the join barrier is a plain condition
// variable on (cursor exhausted && no chunk in flight) — no futures, no per-task
// allocation. The first exception thrown by any chunk is captured and rethrown on
// the calling thread after the barrier; remaining chunks still run.

#ifndef VUSION_SRC_HOST_THREAD_POOL_H_
#define VUSION_SRC_HOST_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace vusion::host {

class ThreadPool {
 public:
  // `threads` is the total concurrency including the calling thread, so the pool
  // spawns threads-1 background workers. threads<=1 spawns none and ParallelFor
  // runs inline.
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t thread_count() const { return workers_.size() + 1; }

  // Runs body(begin, end) over disjoint chunks covering [0, count), concurrently
  // on all pool threads plus the caller, and returns after every chunk completed.
  // grain=0 picks a chunk size targeting a few chunks per thread. Not reentrant:
  // one batch at a time (the scan pipeline is the only dispatcher).
  void ParallelFor(std::size_t count, std::size_t grain,
                   const std::function<void(std::size_t, std::size_t)>& body);

 private:
  void WorkerLoop();
  // Claims and runs chunks until the current batch's cursor is exhausted.
  void DrainChunks();

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable work_ready_;
  std::condition_variable batch_done_;
  // Current batch (guarded by mu_; body_ is only dereferenced for a chunk claimed
  // while it was non-null, and cleared only after the barrier).
  const std::function<void(std::size_t, std::size_t)>* body_ = nullptr;
  std::size_t next_ = 0;
  std::size_t end_ = 0;
  std::size_t grain_ = 1;
  std::size_t in_flight_ = 0;
  std::exception_ptr first_error_;
  bool shutdown_ = false;
};

}  // namespace vusion::host

#endif  // VUSION_SRC_HOST_THREAD_POOL_H_
