# Empty compiler generated dependencies file for vusion_engine_test.
# This may be replaced when dependencies are built.
