// fusion_inspector: a small CLI for exploring the simulator - pick an engine,
// boot VMs, run for a while, and watch live fusion statistics. The kind of tool a
// downstream user reaches for first.
//
//   $ ./build/examples/fusion_inspector --engine=vusion --vms=4 --seconds=120
//   $ ./build/examples/fusion_inspector --engine=ksm --vms=8 --image-pages=4096
//   $ ./build/examples/fusion_inspector --help

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "src/fusion/engine_factory.h"
#include "src/workload/scenario.h"

using namespace vusion;

namespace {

struct Options {
  EngineKind engine = EngineKind::kVUsion;
  int vms = 4;
  int seconds = 120;
  int sample_seconds = 10;
  std::uint64_t image_pages = 2048;
  std::uint64_t seed = 42;
  bool thp_images = false;
  bool trace = false;
};

void PrintUsage() {
  std::printf(
      "usage: fusion_inspector [options]\n"
      "  --engine=<none|ksm|ksm-coa|ksm-zero|wpf|vusion|vusion-thp|memcombining>\n"
      "  --vms=<count>            guests to boot (default 4)\n"
      "  --seconds=<duration>     simulated runtime (default 120)\n"
      "  --sample=<seconds>       sampling interval (default 10)\n"
      "  --image-pages=<pages>    guest size in 4K pages (default 2048 = 8 MB)\n"
      "  --thp                    boot THP-backed guests\n"
      "  --trace                  record kernel/fusion events, print a summary\n"
      "  --seed=<n>               simulation seed (default 42)\n");
}

bool ParseEngine(const std::string& name, EngineKind& out) {
  const struct {
    const char* name;
    EngineKind kind;
  } table[] = {
      {"none", EngineKind::kNone},         {"ksm", EngineKind::kKsm},
      {"ksm-coa", EngineKind::kKsmCoA},    {"ksm-zero", EngineKind::kKsmZeroOnly},
      {"wpf", EngineKind::kWpf},           {"vusion", EngineKind::kVUsion},
      {"vusion-thp", EngineKind::kVUsionThp},
      {"memcombining", EngineKind::kMemoryCombining},
  };
  for (const auto& entry : table) {
    if (name == entry.name) {
      out = entry.kind;
      return true;
    }
  }
  return false;
}

bool ParseArgs(int argc, char** argv, Options& options) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value_of = [&arg]() { return arg.substr(arg.find('=') + 1); };
    if (arg == "--help" || arg == "-h") {
      return false;
    }
    if (arg.rfind("--engine=", 0) == 0) {
      if (!ParseEngine(value_of(), options.engine)) {
        std::fprintf(stderr, "unknown engine '%s'\n", value_of().c_str());
        return false;
      }
    } else if (arg.rfind("--vms=", 0) == 0) {
      options.vms = std::atoi(value_of().c_str());
    } else if (arg.rfind("--seconds=", 0) == 0) {
      options.seconds = std::atoi(value_of().c_str());
    } else if (arg.rfind("--sample=", 0) == 0) {
      options.sample_seconds = std::atoi(value_of().c_str());
    } else if (arg.rfind("--image-pages=", 0) == 0) {
      options.image_pages = std::strtoull(value_of().c_str(), nullptr, 10);
    } else if (arg.rfind("--seed=", 0) == 0) {
      options.seed = std::strtoull(value_of().c_str(), nullptr, 10);
    } else if (arg == "--thp") {
      options.thp_images = true;
    } else if (arg == "--trace") {
      options.trace = true;
    } else {
      std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
      return false;
    }
  }
  return options.vms > 0 && options.seconds > 0 && options.sample_seconds > 0 &&
         options.image_pages >= 64;
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  if (!ParseArgs(argc, argv, options)) {
    PrintUsage();
    return 1;
  }

  ScenarioConfig config;
  // Size the host to fit the requested guests comfortably.
  FrameId frames = 1u << 16;
  while (frames < options.image_pages * options.vms * 2) {
    frames <<= 1;
  }
  config.machine.frame_count = frames;
  config.machine.seed = options.seed;
  config.engine = options.engine;
  config.fusion.pool_frames = 4096;
  if (options.engine == EngineKind::kVUsionThp) {
    config.enable_khugepaged = true;
    config.khugepaged.period = 2 * kSecond;
  }
  Scenario scenario(config);
  scenario.machine().trace().set_enabled(options.trace);

  std::printf("host: %u frames (%.0f MB), engine: %s, %d guests x %.0f MB\n\n",
              config.machine.frame_count,
              static_cast<double>(config.machine.frame_count) * kPageSize / (1 << 20),
              EngineKindName(options.engine), options.vms,
              static_cast<double>(options.image_pages) * kPageSize / (1 << 20));

  for (int i = 0; i < options.vms; ++i) {
    VmImageSpec spec = VmImage::CatalogImage(i % VmImage::kCatalogSize);
    spec.total_pages = options.image_pages;
    spec.map_anon_as_thp = options.thp_images;
    scenario.BootVm(spec, options.seed * 1000 + i);
  }

  std::printf("%-8s %-12s %-11s %-9s %-9s %-8s %-8s %-8s\n", "t(s)", "consumed MB",
              "saved MB", "merges", "fake", "CoW", "CoA", "huge");
  for (int t = 0; t <= options.seconds; t += options.sample_seconds) {
    if (t > 0) {
      scenario.RunFor(static_cast<SimTime>(options.sample_seconds) * kSecond);
    }
    const FusionEngine* engine = scenario.engine();
    const FusionStats empty{};
    const FusionStats& stats = engine != nullptr ? engine->stats() : empty;
    std::printf("%-8d %-12.1f %-11.1f %-9llu %-9llu %-8llu %-8llu %-8llu\n", t,
                scenario.consumed_mb(),
                engine != nullptr
                    ? static_cast<double>(engine->frames_saved()) * kPageSize / (1 << 20)
                    : 0.0,
                static_cast<unsigned long long>(stats.merges),
                static_cast<unsigned long long>(stats.fake_merges),
                static_cast<unsigned long long>(stats.unmerges_cow),
                static_cast<unsigned long long>(stats.unmerges_coa),
                static_cast<unsigned long long>(scenario.machine().CountHugeMappings()));
  }
  if (options.trace) {
    std::printf("\ntrace: %s(%llu events, %zu dropped)\n",
                scenario.machine().trace().Summary().c_str(),
                static_cast<unsigned long long>(scenario.machine().trace().total_emitted()),
                scenario.machine().trace().dropped());
  }
  return 0;
}
