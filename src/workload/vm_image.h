// Guest VM memory-image generator. A booted VM's memory is populated by category -
// guest kernel, page cache, free ("buddy") pages, anonymous memory - with content
// seeds arranged so that VMs sharing a distro/image produce the cross-VM duplicate
// pages the paper's fusion-rate experiments (Figures 10-12, Table 3) rely on. A
// 44-image catalog models the paper's DAS4 cloud deployment.

#ifndef VUSION_SRC_WORKLOAD_VM_IMAGE_H_
#define VUSION_SRC_WORKLOAD_VM_IMAGE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/kernel/process.h"

namespace vusion {

struct VmImageSpec {
  std::uint64_t distro_seed = 1;  // kernel + base system content (shared per distro)
  std::uint64_t stack_seed = 1;   // software stack content (shared per image)
  std::uint64_t total_pages = 16384;  // 64 MB guest by default

  // Memory composition (fractions of total_pages).
  double kernel_frac = 0.06;
  double page_cache_frac = 0.46;
  double buddy_frac = 0.28;  // pages sitting free in the guest allocator
  // Remainder is anonymous process memory.

  // Content sharing knobs.
  double cache_distro_shared = 0.70;  // page-cache pages from the distro base
  double cache_stack_shared = 0.20;   // page-cache pages from the image's stack
  double buddy_zero_frac = 0.60;      // free pages that are zero (vs stale content)
  double anon_shared_frac = 0.25;     // anon pages from shared library images

  // Back guest memory with host huge pages where 2 MB-aligned chunks allow. This
  // models KVM guests whose whole (host-anonymous) memory is THP-backed - guest
  // page cache and free pages included.
  bool map_anon_as_thp = false;
};

// Precomputed boot recipe for one (spec, instance_seed) pair: the per-page
// content seed of every region, ready to map into any Machine. Immutable after
// ComputeTemplate, so a fleet booting N same-image Machines shares ONE template
// read-only across host threads instead of re-deriving ~total_pages seeds (and
// their RNG stream) per Machine — the frame contents themselves stay lazy
// behind the seeds (ContentKind::kPattern), so sharing the template shares the
// only eagerly-computed part of a boot.
struct VmImageTemplate {
  VmImageSpec spec;
  std::vector<std::uint64_t> kernel_seeds;
  std::vector<std::uint64_t> cache_seeds;
  std::vector<std::uint64_t> buddy_seeds;
  std::vector<std::uint64_t> anon_seeds;

  [[nodiscard]] std::size_t resident_bytes() const {
    return (kernel_seeds.capacity() + cache_seeds.capacity() + buddy_seeds.capacity() +
            anon_seeds.capacity()) *
           sizeof(std::uint64_t);
  }
};

class VmImage {
 public:
  // Creates a process in the machine and populates it per the spec. instance_seed
  // differentiates the VM-private contents. All regions are madvise-registered.
  // Equivalent to BootFromTemplate(machine, *ComputeTemplate(spec, instance_seed)).
  static Process& Boot(Machine& machine, const VmImageSpec& spec,
                       std::uint64_t instance_seed);

  // Derives the full seed recipe once; the result can boot any number of
  // Machines (concurrently — it is never written after return).
  static std::shared_ptr<const VmImageTemplate> ComputeTemplate(const VmImageSpec& spec,
                                                                std::uint64_t instance_seed);
  static Process& BootFromTemplate(Machine& machine, const VmImageTemplate& tmpl);

  // The diverse-VM catalog: 44 images over 7 distro bases (paper §9.3).
  static VmImageSpec CatalogImage(std::size_t index);
  static constexpr std::size_t kCatalogSize = 44;
};

}  // namespace vusion

#endif  // VUSION_SRC_WORKLOAD_VM_IMAGE_H_
