# Empty compiler generated dependencies file for bench_ablation_wse.
# This may be replaced when dependencies are built.
