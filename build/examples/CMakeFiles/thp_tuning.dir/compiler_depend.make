# Empty compiler generated dependencies file for thp_tuning.
# This may be replaced when dependencies are built.
