// fork(): kernel-level copy-on-write sharing, and its coexistence with the fusion
// engines' own CoW machinery.

#include <gtest/gtest.h>

#include "src/fusion/ksm.h"
#include "src/fusion/vusion_engine.h"
#include "src/kernel/process.h"

namespace vusion {
namespace {

MachineConfig SmallMachine() {
  MachineConfig config;
  config.frame_count = 1u << 14;
  return config;
}

FusionConfig FastFusion() {
  FusionConfig config;
  config.wake_period = 1 * kMillisecond;
  config.pages_per_wake = 256;
  config.pool_frames = 512;
  return config;
}

TEST(ForkTest, ChildSharesFramesCopyOnWrite) {
  Machine machine(SmallMachine());
  Process& parent = machine.CreateProcess();
  const VirtAddr base = parent.AllocateRegion(8, PageType::kAnonymous, false, false);
  for (int i = 0; i < 8; ++i) {
    parent.SetupMapPattern(VaddrToVpn(base) + i, 0x10 + i);
  }
  const std::size_t allocated_before = machine.memory().allocated_count();
  Process& child = machine.ForkProcess(parent);

  // Shared frames: no page copies happened (only the child's page tables).
  EXPECT_LT(machine.memory().allocated_count(), allocated_before + 8);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(parent.TranslateFrame(VaddrToVpn(base) + i),
              child.TranslateFrame(VaddrToVpn(base) + i));
    EXPECT_EQ(machine.memory().refcount(parent.TranslateFrame(VaddrToVpn(base) + i)), 2u);
    // Reads see identical content without faulting.
    EXPECT_EQ(parent.Read64(base + i * kPageSize), child.Read64(base + i * kPageSize));
  }
  EXPECT_EQ(machine.total_faults(), 0u);
}

TEST(ForkTest, WriteIsolatesBothDirections) {
  Machine machine(SmallMachine());
  Process& parent = machine.CreateProcess();
  const VirtAddr base = parent.AllocateRegion(4, PageType::kAnonymous, false, false);
  parent.SetupMapPattern(VaddrToVpn(base), 0x20);
  parent.SetupMapPattern(VaddrToVpn(base) + 1, 0x21);
  Process& child = machine.ForkProcess(parent);

  // Child writes: parent unaffected.
  const std::uint64_t parent_word = parent.Read64(base);
  child.Write64(base, 0xc1);
  EXPECT_EQ(child.Read64(base), 0xc1u);
  EXPECT_EQ(parent.Read64(base), parent_word);
  EXPECT_NE(parent.TranslateFrame(VaddrToVpn(base)), child.TranslateFrame(VaddrToVpn(base)));
  // Parent's page is now the last sharer: its next write reclaims in place.
  const FrameId parent_frame = parent.TranslateFrame(VaddrToVpn(base));
  parent.Write64(base, 0xa1);
  EXPECT_EQ(parent.TranslateFrame(VaddrToVpn(base)), parent_frame);
  EXPECT_EQ(parent.Read64(base), 0xa1u);
  EXPECT_EQ(machine.memory().refcount(parent_frame), 0u);

  // Parent writes the other page first: child keeps the original.
  const std::uint64_t original = child.Read64(base + kPageSize);
  parent.Write64(base + kPageSize, 0xa2);
  EXPECT_EQ(child.Read64(base + kPageSize), original);
  EXPECT_EQ(parent.Read64(base + kPageSize), 0xa2u);
}

TEST(ForkTest, GrandchildSharesThreeWays) {
  Machine machine(SmallMachine());
  Process& parent = machine.CreateProcess();
  const VirtAddr base = parent.AllocateRegion(2, PageType::kAnonymous, false, false);
  parent.SetupMapPattern(VaddrToVpn(base), 0x30);
  Process& child = machine.ForkProcess(parent);
  Process& grandchild = machine.ForkProcess(child);
  const FrameId shared = parent.TranslateFrame(VaddrToVpn(base));
  EXPECT_EQ(machine.memory().refcount(shared), 3u);
  EXPECT_EQ(grandchild.TranslateFrame(VaddrToVpn(base)), shared);
  grandchild.Write64(base, 1);
  EXPECT_EQ(machine.memory().refcount(shared), 2u);
  EXPECT_EQ(parent.TranslateFrame(VaddrToVpn(base)), shared);
}

TEST(ForkTest, UnmapAndDestroyRespectSharing) {
  Machine machine(SmallMachine());
  Process& parent = machine.CreateProcess();
  const VirtAddr base = parent.AllocateRegion(4, PageType::kAnonymous, false, false);
  parent.SetupMapPattern(VaddrToVpn(base), 0x40);
  Process& child = machine.ForkProcess(parent);
  const FrameId shared = parent.TranslateFrame(VaddrToVpn(base));
  const std::uint64_t content = child.Read64(base);

  parent.SetupUnmap(VaddrToVpn(base));
  EXPECT_TRUE(machine.memory().allocated(shared));  // child still holds it
  EXPECT_EQ(child.Read64(base), content);

  machine.DestroyProcess(child);
  EXPECT_FALSE(machine.memory().allocated(shared));  // last sharer gone
}

TEST(ForkTest, HugeMappingsAreCopiedEagerly) {
  Machine machine(SmallMachine());
  Process& parent = machine.CreateProcess();
  const VirtAddr base =
      parent.AllocateRegion(kPagesPerHugePage, PageType::kAnonymous, false, true);
  ASSERT_TRUE(parent.SetupMapHuge(VaddrToVpn(base), 0x50000));
  Process& child = machine.ForkProcess(parent);
  EXPECT_TRUE(child.address_space().IsHuge(VaddrToVpn(base)));
  EXPECT_NE(parent.TranslateFrame(VaddrToVpn(base)), child.TranslateFrame(VaddrToVpn(base)));
  EXPECT_EQ(parent.Read64(base + 5 * kPageSize), child.Read64(base + 5 * kPageSize));
}

TEST(ForkTest, EnginesSkipForkSharedPages) {
  // A fork-shared page must not be fused even if its content duplicates another
  // page: the kernel owns that CoW state (documented conservative rule).
  Machine machine(SmallMachine());
  Ksm ksm(machine, FastFusion());
  ksm.Install();
  Process& parent = machine.CreateProcess();
  const VirtAddr base = parent.AllocateRegion(4, PageType::kAnonymous, true, false);
  parent.SetupMapPattern(VaddrToVpn(base), 0x61);
  parent.SetupMapPattern(VaddrToVpn(base) + 1, 0x61);  // intra-process duplicate
  Process& child = machine.ForkProcess(parent);
  machine.Idle(100 * kMillisecond);
  EXPECT_EQ(ksm.frames_saved(), 0u);  // both pages fork-shared: skipped
  // Break the sharing by writing; now fusion may proceed on the private copies.
  parent.Write64(base, 0);
  parent.Write64(base + kPageSize, 0);
  child.Write64(base, 0);
  child.Write64(base + kPageSize, 0);
  machine.Idle(200 * kMillisecond);
  EXPECT_GT(ksm.frames_saved(), 0u);
  ksm.Uninstall();
}

TEST(ForkTest, ForkCopiesEngineManagedPagesPrivately) {
  Machine machine(SmallMachine());
  VUsionEngine engine(machine, FastFusion());
  engine.Install();
  Process& parent = machine.CreateProcess();
  const VirtAddr base = parent.AllocateRegion(4, PageType::kAnonymous, true, false);
  parent.SetupMapPattern(VaddrToVpn(base), 0x71);
  for (int i = 0; i < 400 && !engine.IsManaged(parent, VaddrToVpn(base)); ++i) {
    machine.Idle(1 * kMillisecond);
  }
  ASSERT_TRUE(engine.IsManaged(parent, VaddrToVpn(base)));

  Process& child = machine.ForkProcess(parent);
  // Parent's page stays managed; the child got a plain private copy.
  EXPECT_TRUE(engine.IsManaged(parent, VaddrToVpn(base)));
  EXPECT_FALSE(engine.IsManaged(child, VaddrToVpn(base)));
  const Pte* child_pte = child.address_space().GetPte(VaddrToVpn(base));
  ASSERT_NE(child_pte, nullptr);
  EXPECT_TRUE(child_pte->writable());
  EXPECT_FALSE(child_pte->reserved_trap());
  PhysicalMemory probe(1);
  probe.FillPattern(0, 0x71);
  EXPECT_EQ(child.Read64(base), probe.ReadU64(0, 0));
  engine.Uninstall();
}

TEST(ForkTest, ApachePreforkStyleWorkerPool) {
  // The real prefork pattern: one template process, N forked workers. Until the
  // workers dirty their pages, the pool costs almost nothing beyond the template.
  Machine machine(SmallMachine());
  Process& httpd = machine.CreateProcess();
  const std::size_t pages = 256;
  const VirtAddr base = httpd.AllocateRegion(pages, PageType::kAnonymous, false, false);
  for (std::size_t i = 0; i < pages; ++i) {
    httpd.SetupMapPattern(VaddrToVpn(base) + i, 0x80 + i);
  }
  const std::size_t before = machine.memory().allocated_count();
  std::vector<Process*> workers;
  for (int w = 0; w < 8; ++w) {
    workers.push_back(&machine.ForkProcess(httpd));
  }
  // Eight workers cost only their page tables, not 8x256 pages.
  EXPECT_LT(machine.memory().allocated_count(), before + 8 * 8);
  // Each worker dirties a small scratch area.
  for (Process* worker : workers) {
    for (int i = 0; i < 8; ++i) {
      worker->Write64(base + i * kPageSize, worker->id());
    }
  }
  EXPECT_GE(machine.memory().allocated_count(), before + 8 * 8);
  // Template content still intact everywhere else.
  PhysicalMemory probe(1);
  probe.FillPattern(0, 0x80 + 100);
  for (Process* worker : workers) {
    EXPECT_EQ(worker->Read64(base + 100 * kPageSize), probe.ReadU64(0, 0));
  }
}

}  // namespace
}  // namespace vusion
