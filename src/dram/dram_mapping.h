// Physical-address to DRAM geometry mapping.
//
// Layout (low to high bits): column within an 8 KB row, then bank, then row index.
// Consequently two DRAM rows that are physically adjacent within one bank are
// row_bytes * banks = 128 KB apart in the physical address space, and a 2 MB
// contiguous region (a huge page, or WPF's mostly-contiguous fused pages) contains
// many same-bank adjacent-row triples - exactly what double-sided Rowhammer needs.

#ifndef VUSION_SRC_DRAM_DRAM_MAPPING_H_
#define VUSION_SRC_DRAM_DRAM_MAPPING_H_

#include <cstdint>

#include "src/cache/llc.h"
#include "src/phys/frame.h"

namespace vusion {

struct DramConfig {
  std::size_t row_bytes = 8192;  // 2 pages per row
  std::size_t banks = 16;
  SimTime refresh_interval = 64 * kMillisecond;
  // Activations each aggressor row needs within one refresh interval for bits in the
  // row between them to flip (double-sided). Scaled to simulation speed.
  std::uint32_t hammer_threshold = 50000;
  // Single-sided hammering is far less effective: a lone hot row only disturbs its
  // neighbours after this multiple of the double-sided threshold. 0 disables it.
  std::uint32_t single_sided_factor = 6;
  // Fraction of rows containing at least one flippable cell, and max cells per row.
  double vulnerable_row_fraction = 0.30;
  std::uint32_t max_flips_per_row = 3;
  std::uint64_t template_seed = 0x5eedULL;
};

struct DramLocation {
  std::size_t bank = 0;
  std::uint64_t row = 0;     // row index within the bank
  std::size_t column = 0;    // byte offset within the row
};

class DramMapping {
 public:
  explicit DramMapping(const DramConfig& config) : config_(config) {}

  [[nodiscard]] DramLocation Locate(PhysAddr paddr) const;

  // Inverse: first physical address of (bank, row).
  [[nodiscard]] PhysAddr RowBase(std::size_t bank, std::uint64_t row) const;

  // Physical distance between adjacent rows of the same bank.
  [[nodiscard]] PhysAddr SameBankRowStride() const {
    return static_cast<PhysAddr>(config_.row_bytes) * config_.banks;
  }

  [[nodiscard]] std::size_t pages_per_row() const { return config_.row_bytes / kPageSize; }
  [[nodiscard]] const DramConfig& config() const { return config_; }

 private:
  DramConfig config_;
};

}  // namespace vusion

#endif  // VUSION_SRC_DRAM_DRAM_MAPPING_H_
