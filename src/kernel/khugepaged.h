// khugepaged: the background daemon that collapses 512 contiguous small pages into
// transparent huge pages (paper §8). Collapse policy follows Ingens-style activity
// gating (min_active_subpages = the paper's `n`), and the installed SharingPolicy is
// consulted so fusion engines can veto (KSM-managed pages block collapse in Linux)
// or securely prepare (VUsion's fake-unmerge-then-collapse, §8.2).

#ifndef VUSION_SRC_KERNEL_KHUGEPAGED_H_
#define VUSION_SRC_KERNEL_KHUGEPAGED_H_

#include "src/kernel/daemon.h"
#include "src/kernel/machine.h"

namespace vusion {

struct KhugepagedConfig {
  SimTime period = 10 * kSecond;
  std::size_t ranges_per_wake = 16;
  // Minimum number of recently-accessed subpages for a range to be worth a THP.
  // n=1 maximizes performance (conserves THPs); larger n favors fusion capacity.
  std::size_t min_active_subpages = 1;

  // SmartMD-style dynamic n (the optimization the paper points to in §8.1, [21]):
  // interpolate n between n_min (ample free memory: conserve THPs) and n_max
  // (memory pressure: stop collapsing, let fusion reclaim) based on the free-frame
  // level at each wake-up.
  bool adaptive_n = false;
  std::size_t n_min = 1;
  std::size_t n_max = 448;
  std::size_t pressure_low_frames = 4096;    // free at or below this => n = n_max
  std::size_t pressure_high_frames = 16384;  // free at or above this => n = n_min
};

namespace snapshot {
class SnapshotWriter;
class SnapshotReader;
}  // namespace snapshot

class Khugepaged final : public Daemon {
 public:
  Khugepaged(Machine& machine, const KhugepagedConfig& config);

  // Savestates: threshold, schedule, cursor, counters (config is re-supplied by
  // the Machine restore path, which reconstructs the daemon before restoring).
  void SaveState(snapshot::SnapshotWriter& w) const;
  void RestoreState(snapshot::SnapshotReader& r);

  [[nodiscard]] SimTime next_run() const override { return next_run_; }
  void Run() override;

  [[nodiscard]] std::uint64_t collapses() const { return collapses_; }
  [[nodiscard]] std::uint64_t collapse_attempts() const { return attempts_; }
  [[nodiscard]] const KhugepagedConfig& config() const { return config_; }
  // The activity threshold currently in effect (fixed, or adapted to pressure).
  [[nodiscard]] std::size_t current_n() const { return current_n_; }

 private:
  bool TryCollapse(Process& process, Vpn base);
  void AdaptThreshold();

  Machine* machine_;
  KhugepagedConfig config_;
  std::size_t current_n_;
  SimTime next_run_ = 0;
  std::size_t range_cursor_ = 0;  // index into the flattened candidate range list
  std::uint64_t collapses_ = 0;
  std::uint64_t attempts_ = 0;
};

}  // namespace vusion

#endif  // VUSION_SRC_KERNEL_KHUGEPAGED_H_
