
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/vm_image_test.cc" "tests/CMakeFiles/vm_image_test.dir/vm_image_test.cc.o" "gcc" "tests/CMakeFiles/vm_image_test.dir/vm_image_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/vusion_attack.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vusion_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vusion_fusion.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vusion_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vusion_dram.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vusion_mmu.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vusion_phys.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vusion_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vusion_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
