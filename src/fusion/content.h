// Latency-charged content operations and the round-robin scan cursor shared by the
// scanning fusion engines.

#ifndef VUSION_SRC_FUSION_CONTENT_H_
#define VUSION_SRC_FUSION_CONTENT_H_

#include <bit>

#include "src/kernel/machine.h"
#include "src/kernel/process.h"

namespace vusion {

// Content hash/compare for the fusion engines. Two strictly separated layers:
//
//  * Charged operations (Hash, Compare, ChargeTreeStep, ChargeTreeDescend,
//    Matches) accrue the paper-faithful modeled CPU cost — jhash of a 4 KB page,
//    memcmp of two 4 KB pages, rbtree pointer chasing — to the machine clock.
//    Simulated timing depends only on these charges.
//
//  * Host-side operations (HostFingerprint, HostOrder) are free on the simulated
//    clock and exist to make the simulator itself fast: HostFingerprint is the
//    per-frame content hash memoized by PhysicalMemory's content-generation
//    counter, and HostOrder is the total order the fusion trees are sorted by.
//
// By default HostOrder is fingerprint-first — (cached 64-bit hash, bytes only on
// hash collision) — so a tree-descend step costs the host one integer compare
// instead of a byte comparison. FusionConfig::byte_ordered_trees selects the
// reference byte-lexicographic order (the pre-fingerprint behaviour) instead.
// Both orders agree on equality (bytes equal <=> rank equal), and charged costs
// are a function of tree size only, so every simulated statistic and every
// charged latency is bit-identical between the two modes; see DESIGN.md,
// "Two clocks: host cost vs charged cost".
class ChargedContent {
 public:
  explicit ChargedContent(Machine& machine, bool byte_ordered = false)
      : machine_(&machine), byte_ordered_(byte_ordered) {}

  // --- Charged (modeled cost) ---
  //
  // Hash and ChargeTreeDescend are defined inline: the scanners issue both on
  // every unique page, and the cross-TU call overhead is measurable there.

  std::uint64_t Hash(FrameId frame) const {
    LatencyModel& lm = machine_->latency();
    lm.Charge(lm.config().content_hash);
    return machine_->memory().HashContent(frame);
  }
  int Compare(FrameId a, FrameId b) const;
  // One tree descend step's bookkeeping cost (pointer chasing).
  void ChargeTreeStep() const;
  // Modeled cost of one full lookup/insert descent of a content-ordered tree with
  // `tree_size` entries: floor(log2(size))+1 steps, each a tree_step plus a
  // content_compare, charged as one noisy quantum. Deliberately a function of
  // size alone so the charge stream cannot depend on the host-side tree layout.
  void ChargeTreeDescend(std::size_t tree_size) const {
    if (tree_size == 0) {
      return;
    }
    // floor(log2(n)) + 1, identical to the obvious shift loop.
    const std::size_t steps = std::bit_width(tree_size);
    LatencyModel& lm = machine_->latency();
    lm.Charge(steps * (lm.config().tree_step + lm.config().content_compare));
  }
  // Charged equality check (one content_compare); host work is fingerprint-first.
  [[nodiscard]] bool Matches(FrameId a, FrameId b) const;

  // --- Host-side (free on the simulated clock) ---

  // Memoized content hash; recomputed only when the frame's generation moved.
  [[nodiscard]] std::uint64_t HostFingerprint(FrameId frame) const;
  // The tree order: fingerprint-first, or raw byte order in the ablation mode.
  [[nodiscard]] int HostOrder(FrameId a, FrameId b) const;
  [[nodiscard]] bool byte_ordered() const { return byte_ordered_; }

 private:
  Machine* machine_;
  bool byte_ordered_;
};

// Iterates (process, vpn) pairs over all mergeable VMAs of all processes, round
// robin, tolerating processes/VMAs registered while scanning. `wrapped` is set when
// the cursor completes a full round over everything (KSM's unstable-tree reset and
// VUsion's round counter key off this).
class ScanCursor {
 public:
  explicit ScanCursor(Machine& machine) : machine_(&machine) {}

  // Returns false if there is no mergeable memory at all. The inline body is
  // the loop's steady-state first iteration — the current indices still point
  // at a live process/VMA/page — revalidated from scratch on every call (no
  // derived state is memoized), so it is behaviorally identical to entering
  // the out-of-line walk.
  bool Next(Process*& process, Vpn& vpn, bool& wrapped) {
    const auto& processes = machine_->processes();
    if (process_idx_ < processes.size() && processes[process_idx_] != nullptr) {
      Process& candidate = *processes[process_idx_];
      const auto& areas = candidate.address_space().vmas().areas();
      if (vma_idx_ < areas.size()) {
        const VmArea& vma = areas[vma_idx_];
        if (vma.mergeable && page_idx_ < vma.pages) {
          wrapped = false;
          process = &candidate;
          vpn = vma.start + page_idx_;
          ++page_idx_;
          return true;
        }
      }
    }
    return NextSlow(process, vpn, wrapped);
  }

  // What the next Next() would yield, without advancing — the scan loop peeks
  // one page ahead to prefetch its host-side state. Cursor state is four words,
  // so peeking is a copy plus the normal skip logic.
  bool Peek(Process*& process, Vpn& vpn) const {
    ScanCursor copy = *this;
    bool wrapped = false;
    return copy.Next(process, vpn, wrapped);
  }

  // Savestate accessors: the three indices ARE the cursor (everything else is
  // revalidated against the live process table on every Next call).
  struct State {
    std::size_t process_idx = 0;
    std::size_t vma_idx = 0;
    std::uint64_t page_idx = 0;
  };
  [[nodiscard]] State state() const { return {process_idx_, vma_idx_, page_idx_}; }
  void RestoreState(const State& s) {
    process_idx_ = s.process_idx;
    vma_idx_ = s.vma_idx;
    page_idx_ = s.page_idx;
  }

 private:
  bool NextSlow(Process*& process, Vpn& vpn, bool& wrapped);

  Machine* machine_;
  std::size_t process_idx_ = 0;
  std::size_t vma_idx_ = 0;
  std::uint64_t page_idx_ = 0;
};

}  // namespace vusion

#endif  // VUSION_SRC_FUSION_CONTENT_H_
