// Ablation of §7.2: without working-set estimation, VUsion removes access from
// every scanned page - including hot ones - and the workload eats a copy-on-access
// fault per scan round per hot page. With WSE, hot pages are skipped.

#include <cstdio>

#include "src/workload/spec_workload.h"
#include "bench/bench_common.h"

namespace vusion {
namespace {

struct Result {
  double runtime_ms = 0.0;
  std::uint64_t coa_faults = 0;
};

Result Measure(bool wse) {
  ScenarioConfig config = EvalScenario(EngineKind::kVUsion);
  config.fusion.working_set_estimation = wse;
  // Fast scanner so the benchmark's runtime spans several full scan rounds - the
  // regime where acting on working-set pages hurts.
  config.fusion.wake_period = 1 * kMillisecond;
  config.fusion.pages_per_wake = 512;
  Scenario scenario(config);
  for (int i = 0; i < 3; ++i) {
    scenario.BootVm(EvalImage(), 10 + i);
  }
  Process& proc = scenario.machine().CreateProcess();
  Rng rng(5);
  const SyntheticBenchmark& bench = SpecWorkload::Suite()[3];  // mcf: big footprint
  const SpecWorkload::Prepared prepared = SpecWorkload::Prepare(proc, bench);
  scenario.RunFor(5 * kSecond);
  const std::uint64_t coa_before = scenario.engine()->stats().unmerges_coa;
  const SimTime runtime = SpecWorkload::Run(proc, prepared, rng);
  Result result;
  result.runtime_ms = static_cast<double>(runtime) / 1e6;
  result.coa_faults = scenario.engine()->stats().unmerges_coa - coa_before;
  return result;
}

void Run() {
  bench::Reporter reporter("ablation_wse");
  reporter.Header("Ablation: working-set estimation (idle page tracking, §7.2)");
  const Result with = Measure(true);
  const Result without = Measure(false);
  std::printf("%-10s %-16s %-16s\n", "WSE", "runtime (ms)", "CoA faults in benchmark");
  std::printf("%-10s %-16.1f %-16llu\n", "on", with.runtime_ms,
              static_cast<unsigned long long>(with.coa_faults));
  std::printf("%-10s %-16.1f %-16llu\n", "off", without.runtime_ms,
              static_cast<unsigned long long>(without.coa_faults));
  reporter.AddRow("wse", {{"wse", true},
                          {"runtime_ms", with.runtime_ms},
                          {"coa_faults", with.coa_faults}});
  reporter.AddRow("wse", {{"wse", false},
                          {"runtime_ms", without.runtime_ms},
                          {"coa_faults", without.coa_faults}});
  std::printf("\noverhead without WSE: %.1f%% more runtime, %.1fx the faults\n",
              100.0 * (without.runtime_ms - with.runtime_ms) / with.runtime_ms,
              with.coa_faults > 0
                  ? static_cast<double>(without.coa_faults) / static_cast<double>(with.coa_faults)
                  : static_cast<double>(without.coa_faults));
}

}  // namespace
}  // namespace vusion

int main() {
  vusion::Run();
  return 0;
}
