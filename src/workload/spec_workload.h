// Synthetic SPEC CPU2006-style benchmarks (paper Figure 7): each named benchmark
// has a memory footprint, a working-set (hot fraction), a write ratio, and a
// locality profile. The harness runs a fixed amount of work and reports simulated
// runtime; overhead relative to a no-fusion baseline reproduces the figure.

#ifndef VUSION_SRC_WORKLOAD_SPEC_WORKLOAD_H_
#define VUSION_SRC_WORKLOAD_SPEC_WORKLOAD_H_

#include <span>

#include "src/kernel/process.h"
#include "src/sim/rng.h"

namespace vusion {

struct SyntheticBenchmark {
  const char* name;
  std::size_t footprint_pages;  // total resident memory
  double hot_fraction;          // fraction of pages forming the working set
  double hot_access_prob;       // probability an access goes to the working set
  double write_ratio;
  std::size_t ops;              // accesses constituting one run
};

class SpecWorkload {
 public:
  // The SPEC CPU2006-like suite.
  static std::span<const SyntheticBenchmark> Suite();

  struct Prepared {
    VirtAddr base = 0;
    const SyntheticBenchmark* bench = nullptr;
  };

  // Allocates and populates the benchmark's footprint (the "load the inputs"
  // phase). Separated from Run so harnesses can let the fusion engine process the
  // resident-but-idle footprint first, as happens over a real benchmark's
  // multi-minute runtime.
  static Prepared Prepare(Process& process, const SyntheticBenchmark& bench);

  // Runs the prepared benchmark's access work; returns simulated runtime.
  static SimTime Run(Process& process, const Prepared& prepared, Rng& rng);

  // Prepare + Run in one step.
  static SimTime Run(Process& process, const SyntheticBenchmark& bench, Rng& rng);
};

}  // namespace vusion

#endif  // VUSION_SRC_WORKLOAD_SPEC_WORKLOAD_H_
