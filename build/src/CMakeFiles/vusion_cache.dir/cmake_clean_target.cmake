file(REMOVE_RECURSE
  "libvusion_cache.a"
)
