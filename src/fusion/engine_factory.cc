#include "src/fusion/engine_factory.h"

#include "src/kernel/process.h"
#include "src/snapshot/io.h"

#include "src/fusion/ksm.h"
#include "src/fusion/memory_combining.h"
#include "src/fusion/vusion_engine.h"
#include "src/fusion/wpf.h"

namespace vusion {

const char* ScanPhaseName(ScanPhase phase) {
  switch (phase) {
    case ScanPhase::kQuantumStart:
      return "quantum_start";
    case ScanPhase::kBatchCollected:
      return "batch_collected";
    case ScanPhase::kHashed:
      return "hashed";
    case ScanPhase::kQuantumEnd:
      return "quantum_end";
  }
  return "?";
}

void FusionEngine::ExportMetrics(MetricsRegistry& registry) const {
  registry.GetCounter("fusion.pages_scanned").Set(stats_.pages_scanned);
  registry.GetCounter("fusion.merges").Set(stats_.merges);
  registry.GetCounter("fusion.fake_merges").Set(stats_.fake_merges);
  registry.GetCounter("fusion.unmerges_cow").Set(stats_.unmerges_cow);
  registry.GetCounter("fusion.unmerges_coa").Set(stats_.unmerges_coa);
  registry.GetCounter("fusion.zero_page_merges").Set(stats_.zero_page_merges);
  registry.GetCounter("fusion.full_scans").Set(stats_.full_scans);
  registry.GetCounter("fusion.thp_splits").Set(stats_.thp_splits);
  for (std::size_t i = 0; i < stats_.merges_by_type.size(); ++i) {
    registry.GetCounter("fusion.merges_by_type", {{"type", PageTypeName(static_cast<PageType>(i))}})
        .Set(stats_.merges_by_type[i]);
  }
  registry.GetGauge("fusion.frames_saved").Set(static_cast<double>(frames_saved()));
  registry.GetGauge("fusion.reserved_frames").Set(static_cast<double>(reserved_frames()));
  // Speculative-hash conflict accounting from the scan pipeline (engines with
  // no pipeline report nothing). Host-side observability only — values vary
  // with thread interleaving, so no parity suite compares them.
  if (const host::ScanTiming* timing = scan_timing()) {
    registry.GetCounter("scan.speculative_hashes").Set(timing->speculative_hashes);
    registry.GetCounter("scan.speculative_stale").Set(timing->speculative_stale);
    registry.GetCounter("scan.streamed_batches").Set(timing->streamed_batches);
  }
}

void FusionEngine::TearDown() {
  for (const auto& process : machine_->processes()) {
    if (process == nullptr) {
      continue;
    }
    for (const VmArea& vma : process->address_space().vmas().areas()) {
      if (vma.mergeable) {
        OnUnregister(*process, vma.start, vma.pages);
      }
    }
  }
}

const char* EngineKindName(EngineKind kind) {
  switch (kind) {
    case EngineKind::kNone:
      return "No dedup";
    case EngineKind::kKsm:
      return "KSM";
    case EngineKind::kKsmCoA:
      return "KSM-CoA";
    case EngineKind::kKsmZeroOnly:
      return "KSM-zero-only";
    case EngineKind::kWpf:
      return "WPF";
    case EngineKind::kVUsion:
      return "VUsion";
    case EngineKind::kVUsionThp:
      return "VUsion THP";
    case EngineKind::kMemoryCombining:
      return "MemCombining";
  }
  return "?";
}

std::unique_ptr<FusionEngine> MakeEngine(EngineKind kind, Machine& machine,
                                         FusionConfig config) {
  config.ApplyEnvOverrides();
  switch (kind) {
    case EngineKind::kNone:
      return nullptr;
    case EngineKind::kKsm:
      return std::make_unique<Ksm>(machine, config);
    case EngineKind::kKsmCoA:
      config.unmerge_on_any_access = true;
      return std::make_unique<Ksm>(machine, config);
    case EngineKind::kKsmZeroOnly:
      config.zero_pages_only = true;
      return std::make_unique<Ksm>(machine, config);
    case EngineKind::kWpf:
      return std::make_unique<Wpf>(machine, config);
    case EngineKind::kVUsion:
      config.thp_aware = false;
      return std::make_unique<VUsionEngine>(machine, config);
    case EngineKind::kVUsionThp:
      config.thp_aware = true;
      return std::make_unique<VUsionEngine>(machine, config);
    case EngineKind::kMemoryCombining:
      return std::make_unique<MemoryCombining>(machine, config);
  }
  return nullptr;
}

std::unique_ptr<FusionEngine> MakeEngineExact(EngineKind kind, Machine& machine,
                                              const FusionConfig& config) {
  switch (kind) {
    case EngineKind::kNone:
      return nullptr;
    case EngineKind::kKsm:
    case EngineKind::kKsmCoA:
    case EngineKind::kKsmZeroOnly:
      // The variant knobs (unmerge_on_any_access, zero_pages_only) are already
      // baked into the recorded config.
      return std::make_unique<Ksm>(machine, config);
    case EngineKind::kWpf:
      return std::make_unique<Wpf>(machine, config);
    case EngineKind::kVUsion:
    case EngineKind::kVUsionThp:
      return std::make_unique<VUsionEngine>(machine, config);
    case EngineKind::kMemoryCombining:
      return std::make_unique<MemoryCombining>(machine, config);
  }
  return nullptr;
}

void FusionEngine::SaveState(snapshot::SnapshotWriter& w) const {
  (void)w;
  throw snapshot::RestoreError("engine",
                               std::string(name()) + " does not support savestates");
}

void FusionEngine::RestoreState(snapshot::SnapshotReader& r) {
  (void)r;
  throw snapshot::RestoreError("engine",
                               std::string(name()) + " does not support savestates");
}

void FusionEngine::SaveCommon(snapshot::SnapshotWriter& w) const {
  w.U64(stats_.pages_scanned);
  w.U64(stats_.merges);
  w.U64(stats_.fake_merges);
  w.U64(stats_.unmerges_cow);
  w.U64(stats_.unmerges_coa);
  w.U64(stats_.zero_page_merges);
  w.U64(stats_.full_scans);
  w.U64(stats_.thp_splits);
  for (const std::uint64_t m : stats_.merges_by_type) {
    w.U64(m);
  }
  w.Bool(stats_.log_allocations);
  w.U64(stats_.allocation_log.size());
  for (const FrameId frame : stats_.allocation_log) {
    w.U32(frame);
  }
  w.U64(stats_.slot_log.size());
  for (const double slot : stats_.slot_log) {
    w.F64(slot);
  }
  w.U64(next_run_);
  w.Bool(paused_);
}

void FusionEngine::RestoreCommon(snapshot::SnapshotReader& r) {
  stats_.pages_scanned = r.U64();
  stats_.merges = r.U64();
  stats_.fake_merges = r.U64();
  stats_.unmerges_cow = r.U64();
  stats_.unmerges_coa = r.U64();
  stats_.zero_page_merges = r.U64();
  stats_.full_scans = r.U64();
  stats_.thp_splits = r.U64();
  for (std::uint64_t& m : stats_.merges_by_type) {
    m = r.U64();
  }
  stats_.log_allocations = r.Bool();
  stats_.allocation_log.clear();
  const std::uint64_t allocs = r.Count(4);
  stats_.allocation_log.reserve(allocs);
  for (std::uint64_t i = 0; i < allocs; ++i) {
    stats_.allocation_log.push_back(r.U32());
  }
  stats_.slot_log.clear();
  const std::uint64_t slots = r.Count(8);
  stats_.slot_log.reserve(slots);
  for (std::uint64_t i = 0; i < slots; ++i) {
    stats_.slot_log.push_back(r.F64());
  }
  next_run_ = r.U64();
  paused_ = r.Bool();
}

}  // namespace vusion
