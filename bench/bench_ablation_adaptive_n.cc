// Ablation of the dynamic-n optimization the paper points to in §8.1 (SmartMD):
// a fixed n=1 conserves huge pages even when memory is scarce, while adaptive n
// raises the collapse threshold under pressure so fusion can reclaim capacity.

#include <cstdio>

#include "src/fusion/vusion_engine.h"
#include "src/kernel/khugepaged.h"
#include "bench/bench_common.h"

namespace vusion {
namespace {

struct Row {
  std::uint64_t huge_pages = 0;
  std::uint64_t collapses = 0;
  double saved_mb = 0.0;
  std::size_t final_n = 0;
};

Row Measure(bool adaptive, FrameId host_frames, std::size_t vm_count) {
  ScenarioConfig config = EvalScenario(EngineKind::kVUsionThp);
  config.machine.frame_count = host_frames;
  config.khugepaged.period = 2 * kSecond;
  config.khugepaged.adaptive_n = adaptive;
  config.khugepaged.pressure_low_frames = host_frames / 16;
  config.khugepaged.pressure_high_frames = host_frames / 2;
  Scenario scenario(config);
  VmImageSpec image = EvalImage();
  image.total_pages = 4096;
  image.map_anon_as_thp = true;
  std::vector<Process*> vms;
  for (std::size_t i = 0; i < vm_count; ++i) {
    vms.push_back(&scenario.BootVm(image, 90 + i));
  }
  // Phased sparse activity: each 2 MB range alternates between hot phases (one
  // touched page, faster than a scan round) and cold phases long enough to be
  // split and fused. When a range turns hot again, khugepaged wants to re-collapse
  // it - exactly the decision the n threshold controls.
  Rng rng(7);
  for (int step = 0; step < 60; ++step) {
    for (Process* vm : vms) {
      std::size_t range_index = 0;
      for (const VmArea& vma : vm->address_space().vmas().areas()) {
        for (Vpn base = vma.start; base + kPagesPerHugePage <= vma.end();
             base += kPagesPerHugePage, ++range_index) {
          if ((static_cast<std::size_t>(step) / 6 + range_index) % 2 == 0) {
            vm->Read64(VpnToVaddr(base + rng.NextBelow(kPagesPerHugePage)));
          }
        }
      }
    }
    scenario.RunFor(3 * kSecond);
  }
  Row row;
  row.huge_pages = scenario.machine().CountHugeMappings();
  row.collapses = scenario.machine().khugepaged()->collapses();
  row.saved_mb = static_cast<double>(scenario.engine()->frames_saved()) * kPageSize /
                 (1024.0 * 1024.0);
  row.final_n = scenario.machine().khugepaged()->current_n();
  return row;
}

void Run() {
  bench::Reporter reporter("ablation_adaptive_n");
  reporter.Header("Ablation: SmartMD-style adaptive n (paper §8.1 / [21])");
  std::printf("%-16s %-10s %-12s %-11s %-10s %-8s\n", "host", "policy", "huge pages",
              "collapses", "saved MB", "n");
  struct Case {
    const char* label;
    FrameId frames;
    std::size_t vms;
  };
  for (const Case& c : {Case{"roomy (512MB)", FrameId{1} << 17, 12},
                        Case{"tight (128MB)", FrameId{1} << 15, 6}}) {
    for (const bool adaptive : {false, true}) {
      const Row row = Measure(adaptive, c.frames, c.vms);
      std::printf("%-16s %-10s %-12llu %-11llu %-10.1f %-8zu\n", c.label,
                  adaptive ? "adaptive" : "fixed n=1",
                  static_cast<unsigned long long>(row.huge_pages),
                  static_cast<unsigned long long>(row.collapses), row.saved_mb,
                  row.final_n);
      reporter.AddRow("adaptive_n", {{"host", c.label},
                                     {"policy", adaptive ? "adaptive" : "fixed n=1"},
                                     {"huge_pages", row.huge_pages},
                                     {"collapses", row.collapses},
                                     {"saved_mb", row.saved_mb},
                                     {"final_n", row.final_n}});
    }
  }
  std::printf("\nexpected: equal when roomy; under pressure the adaptive policy stops\n"
              "re-collapsing intermittently-hot ranges (fewer collapses, less churn),\n"
              "keeping the memory fused instead.\n");
}

}  // namespace
}  // namespace vusion

int main() {
  vusion::Run();
  return 0;
}
