file(REMOVE_RECURSE
  "CMakeFiles/content_cursor_test.dir/content_cursor_test.cc.o"
  "CMakeFiles/content_cursor_test.dir/content_cursor_test.cc.o.d"
  "content_cursor_test"
  "content_cursor_test.pdb"
  "content_cursor_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/content_cursor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
