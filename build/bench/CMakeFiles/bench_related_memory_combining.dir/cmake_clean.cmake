file(REMOVE_RECURSE
  "CMakeFiles/bench_related_memory_combining.dir/bench_related_memory_combining.cc.o"
  "CMakeFiles/bench_related_memory_combining.dir/bench_related_memory_combining.cc.o.d"
  "bench_related_memory_combining"
  "bench_related_memory_combining.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_related_memory_combining.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
