# Empty dependencies file for frame_audit_test.
# This may be replaced when dependencies are built.
