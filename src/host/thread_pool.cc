#include "src/host/thread_pool.h"

#include <algorithm>

namespace vusion::host {

ThreadPool::ThreadPool(std::size_t threads) {
  const std::size_t spawn = threads > 1 ? threads - 1 : 0;
  stripe_pos_.assign(spawn + 1, 0);
  workers_.reserve(spawn);
  for (std::size_t i = 0; i < spawn; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

bool ThreadPool::BatchClaimed() const {
  return mode_ == Mode::kChunks ? next_ >= count_ : claimed_ >= count_;
}

void ThreadPool::RunBatch(std::size_t caller_stripe) {
  work_ready_.notify_all();
  Drain(caller_stripe);
  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lock(mu_);
    batch_done_.wait(lock, [this] { return BatchClaimed() && in_flight_ == 0; });
    error = first_error_;
    first_error_ = nullptr;
  }
  if (error) {
    std::rethrow_exception(error);
  }
}

void ThreadPool::ParallelFor(std::size_t count, std::size_t grain, Body body) {
  if (count == 0) {
    return;
  }
  if (grain == 0) {
    // A few chunks per thread so dynamic dispatch can balance uneven chunk costs.
    grain = std::max<std::size_t>(1, count / (thread_count() * 4));
  }
  if (workers_.empty() || count <= grain) {
    body(0, count);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    body_ = body;
    mode_ = Mode::kChunks;
    count_ = count;
    next_ = 0;
    grain_ = grain;
    first_error_ = nullptr;
    ++generation_;
  }
  RunBatch(workers_.size());
}

void ThreadPool::ParallelTasks(std::size_t count, Body body) {
  if (count == 0) {
    return;
  }
  if (workers_.empty() || count == 1) {
    for (std::size_t i = 0; i < count; ++i) {
      body(i, i + 1);
    }
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    body_ = body;
    mode_ = Mode::kStriped;
    count_ = count;
    claimed_ = 0;
    std::fill(stripe_pos_.begin(), stripe_pos_.end(), 0);
    first_error_ = nullptr;
    ++generation_;
  }
  RunBatch(workers_.size());
}

std::size_t ThreadPool::ClaimStripedLocked(std::size_t stripe) {
  const std::size_t stripes = stripe_pos_.size();
  for (std::size_t k = 0; k < stripes; ++k) {
    const std::size_t s = (stripe + k) % stripes;
    const std::size_t task = s + stripe_pos_[s] * stripes;
    if (task < count_) {
      ++stripe_pos_[s];
      ++claimed_;
      return task;
    }
  }
  return count_;
}

void ThreadPool::Drain(std::size_t stripe) {
  for (;;) {
    std::size_t begin = 0;
    std::size_t end = 0;
    Body body;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (mode_ == Mode::kChunks) {
        if (next_ >= count_) {
          return;
        }
        begin = next_;
        end = std::min(count_, begin + grain_);
        next_ = end;
      } else {
        begin = ClaimStripedLocked(stripe);
        if (begin >= count_) {
          return;
        }
        end = begin + 1;
      }
      ++in_flight_;
      body = body_;
    }
    try {
      body(begin, end);
    } catch (...) {
      std::lock_guard<std::mutex> lock(mu_);
      if (!first_error_) {
        first_error_ = std::current_exception();
      }
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      --in_flight_;
      if (BatchClaimed() && in_flight_ == 0) {
        batch_done_.notify_all();
      }
    }
  }
}

void ThreadPool::WorkerLoop(std::size_t worker_id) {
  std::uint64_t seen_generation = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_ready_.wait(
          lock, [this, seen_generation] { return shutdown_ || generation_ != seen_generation; });
      if (shutdown_) {
        return;
      }
      seen_generation = generation_;
    }
    Drain(worker_id);
  }
}

}  // namespace vusion::host
